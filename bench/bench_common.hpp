/**
 * @file
 * Shared driver for the per-table/per-figure benchmark binaries.
 *
 * Every bench is a standalone executable that prints the measured
 * reproduction next to the paper's reported values. All benches run
 * on the parallel LER engine and share one command line
 * (docs/benchmarks.md):
 *
 *   --threads N        decode/sample worker threads (default: one
 *                      per hardware thread; results are
 *                      bit-identical for any value)
 *   --samples-per-k N  override the conditional sample count per k
 *                      (default: per-bench base x QEC_BENCH_SCALE)
 *   --spec S           run only the decoder config whose legacy
 *                      name or canonical spec string matches S
 *   --repeat N         repeat each timed measurement N times and
 *                      report the median (committed BENCH_*.json
 *                      numbers should use N >= 3 so trajectories
 *                      are noise-robust)
 *   --json PATH        also write the report as JSON
 *
 * Sample counts additionally scale with the QEC_BENCH_SCALE
 * environment variable (default 1.0); raise it for tighter error
 * bars.
 */

#ifndef QEC_BENCH_COMMON_HPP
#define QEC_BENCH_COMMON_HPP

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "qec/qec.hpp"

namespace qecbench
{

/** Options parsed from the shared bench command line. */
struct BenchCli
{
    /** Worker threads; 0 = one per hardware thread. */
    int threads = 0;
    /** Per-k sample override; 0 = bench default x scale. */
    uint64_t samplesPerK = 0;
    /** Decoder config filter (legacy name or spec string). */
    std::string spec;
    /** Timed-measurement repetitions (median is reported). */
    int repeat = 1;
    /** Where to write the JSON report; empty = don't. */
    std::string jsonPath;
};

/** Default per-k sample count for LER estimation, after scaling. */
inline uint64_t
scaledSamples(uint64_t base)
{
    const double scaled = static_cast<double>(base) *
                          qec::benchScale();
    return scaled < 16 ? 16 : static_cast<uint64_t>(scaled);
}

/** Median of a non-empty sample vector (sorts a copy). */
inline double
medianOf(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    const size_t n = samples.size();
    return n % 2 ? samples[n / 2]
                 : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

/**
 * One bench run: parses the shared CLI, prints the banner, tracks
 * wall time, and collects every printed table (plus scalar notes)
 * for the optional JSON report.
 */
class Bench
{
  public:
    Bench(int argc, char **argv, const char *name,
          const char *description)
        : name_(name), description_(description),
          start_(std::chrono::steady_clock::now())
    {
        parse(argc, argv);
        std::printf(
            "==========================================================\n"
            "%s — %s\n"
            "Promatch reproduction (see EXPERIMENTS.md); "
            "QEC_BENCH_SCALE=%g, threads=%d\n"
            "==========================================================\n",
            name, description, qec::benchScale(),
            lerOptions(0).resolvedThreads());
    }

    const BenchCli &cli() const { return cli_; }

    /**
     * Estimator options with the shared CLI applied: worker threads,
     * per-k sample override, and the LER-bench defaults (kMax 24;
     * skipBelowK 3 — k <= 2 cannot defeat the code or overflow
     * Astrea, so P_f = 0 there).
     */
    qec::LerOptions
    lerOptions(uint64_t base_samples) const
    {
        qec::LerOptions options;
        options.kMax = 24;
        options.samplesPerK = cli_.samplesPerK
                                  ? cli_.samplesPerK
                                  : scaledSamples(base_samples);
        options.skipBelowK = 3;
        options.threads = cli_.threads;
        return options;
    }

    /**
     * The --spec value when given, else `fallback` — for benches
     * that treat the filter as an override of their single
     * decoder configuration.
     */
    std::string
    specOr(const std::string &fallback) const
    {
        specMatched_ = true;
        return cli_.spec.empty() ? fallback : cli_.spec;
    }

    /**
     * For benches with no decoder configuration to select: error
     * out when --spec was given rather than silently ignoring it.
     */
    void
    rejectSpecFilter(const char *why) const
    {
        if (cli_.spec.empty()) {
            return;
        }
        std::fprintf(stderr,
                     "%s: --spec is not supported here: %s\n",
                     name_.c_str(), why);
        std::exit(2);
    }

    /**
     * True when --spec is absent or matches `config` (either the
     * legacy configuration name or an equivalent spec string —
     * both sides are compared in canonical DecoderSpec form).
     * Benches that sweep configurations skip the others; a filter
     * that matches nothing turns finish() into a failure.
     */
    bool
    specEnabled(const std::string &config) const
    {
        const bool enabled =
            cli_.spec.empty() || cli_.spec == config ||
            canonicalSpec(cli_.spec) == canonicalSpec(config);
        specMatched_ = specMatched_ || enabled;
        return enabled;
    }

    /** Estimate the LER of one named decoder configuration. */
    qec::LerEstimate
    runLer(const qec::ExperimentContext &ctx,
           const std::string &config, uint64_t base_samples,
           const qec::SampleObserver &observer = nullptr) const
    {
        auto decoder =
            qec::makeDecoder(config, ctx.graph(), ctx.paths());
        return qec::estimateLer(ctx, *decoder,
                                lerOptions(base_samples), observer);
    }

    /** Print a table and keep it for the JSON report. */
    void
    emit(const qec::ReportTable &table)
    {
        table.print();
        tables_.push_back(table.json());
    }

    /** Attach one scalar metric to the JSON report. */
    void
    note(const std::string &key, const std::string &value)
    {
        notes_.emplace_back(key, value);
    }

    void
    note(const std::string &key, double value)
    {
        note(key, qec::formatSci(value));
    }

    /**
     * Print the elapsed wall time, write the JSON report if
     * requested, and return the process exit code.
     */
    int
    finish()
    {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        std::printf("\n[%s] elapsed: %.2f s (threads=%d)\n",
                    name_.c_str(), elapsed,
                    lerOptions(0).resolvedThreads());
        if (!cli_.jsonPath.empty() && !writeJson(elapsed)) {
            return 1; // A requested artifact must not silently
                      // go missing from a "successful" run.
        }
        if (!cli_.spec.empty() && !specMatched_) {
            // A valid spec that matched none of this bench's
            // configurations: the report above is empty, which
            // must not read as a successful run.
            std::fprintf(
                stderr,
                "%s: --spec '%s' matched no configuration of "
                "this bench\n",
                name_.c_str(), cli_.spec.c_str());
            return 1;
        }
        return 0;
    }

  private:
    /**
     * Canonical spec form for filter comparison (legacy names
     * mapped, option order normalized); unparseable input falls
     * back to the raw string and simply matches nothing.
     */
    static std::string
    canonicalSpec(const std::string &text)
    {
        try {
            return qec::DecoderSpec::parse(
                       qec::specForName(text))
                .toString();
        } catch (const qec::SpecError &) {
            return text;
        }
    }

    void
    usage(int code) const
    {
        std::printf(
            "usage: %s [--threads N] [--samples-per-k N] "
            "[--spec S] [--repeat N] [--json PATH]\n\n%s\n\nSee "
            "docs/benchmarks.md for the shared CLI and the JSON "
            "schema.\n",
            name_.c_str(), description_.c_str());
        std::exit(code);
    }

    void
    parse(int argc, char **argv)
    {
        const auto value = [&](int &i) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: missing value for %s\n",
                             name_.c_str(), argv[i]);
                usage(2);
            }
            return argv[++i];
        };
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--threads")) {
                char *end = nullptr;
                const long parsed =
                    std::strtol(value(i), &end, 10);
                if (!end || *end != '\0' || parsed < 0) {
                    std::fprintf(
                        stderr,
                        "%s: --threads needs a non-negative "
                        "integer (0 = all hardware threads), "
                        "got '%s'\n",
                        name_.c_str(), argv[i]);
                    usage(2);
                }
                cli_.threads = static_cast<int>(parsed);
            } else if (!std::strcmp(argv[i],
                                    "--samples-per-k")) {
                char *end = nullptr;
                const long long parsed =
                    std::strtoll(value(i), &end, 10);
                if (!end || *end != '\0' || parsed <= 0) {
                    std::fprintf(
                        stderr,
                        "%s: --samples-per-k needs a positive "
                        "integer, got '%s'\n",
                        name_.c_str(), argv[i]);
                    usage(2);
                }
                cli_.samplesPerK =
                    static_cast<uint64_t>(parsed);
            } else if (!std::strcmp(argv[i], "--spec")) {
                cli_.spec = value(i);
            } else if (!std::strcmp(argv[i], "--repeat")) {
                char *end = nullptr;
                const long parsed =
                    std::strtol(value(i), &end, 10);
                if (!end || *end != '\0' || parsed <= 0) {
                    std::fprintf(
                        stderr,
                        "%s: --repeat needs a positive integer, "
                        "got '%s'\n",
                        name_.c_str(), argv[i]);
                    usage(2);
                }
                cli_.repeat = static_cast<int>(parsed);
            } else if (!std::strcmp(argv[i], "--json")) {
                cli_.jsonPath = value(i);
            } else if (!std::strcmp(argv[i], "--help") ||
                       !std::strcmp(argv[i], "-h")) {
                usage(0);
            } else {
                std::fprintf(stderr,
                             "%s: unknown argument '%s'\n",
                             name_.c_str(), argv[i]);
                usage(2);
            }
        }
        validateSpecFilter();
    }

    /**
     * Reject --spec values that no registered component could ever
     * match: a typo would otherwise silently produce an empty
     * (exit-0) report.
     */
    void
    validateSpecFilter() const
    {
        if (cli_.spec.empty()) {
            return;
        }
        try {
            const qec::DecoderSpec spec = qec::DecoderSpec::parse(
                qec::specForName(cli_.spec));
            const auto &registry =
                qec::DecoderRegistry::instance();
            const auto check = [&](const qec::StackSpec &stack) {
                if (!registry.hasDecoder(stack.main)) {
                    throw qec::SpecError(
                        "unknown main decoder component '" +
                        stack.main + "'");
                }
                if (!stack.predecoder.empty() &&
                    !registry.hasPredecoder(stack.predecoder)) {
                    throw qec::SpecError(
                        "unknown predecoder component '" +
                        stack.predecoder + "'");
                }
            };
            check(spec.primary);
            if (spec.partner) {
                check(*spec.partner);
            }
        } catch (const qec::SpecError &error) {
            std::fprintf(stderr, "%s: bad --spec '%s': %s\n",
                         name_.c_str(), cli_.spec.c_str(),
                         error.what());
            std::exit(2);
        }
    }

    bool
    writeJson(double elapsed) const
    {
        std::FILE *f = std::fopen(cli_.jsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr,
                         "%s: cannot open %s for writing\n",
                         name_.c_str(), cli_.jsonPath.c_str());
            return false;
        }
        std::string out = "{\n";
        out += "  \"bench\": " + qec::jsonQuote(name_) + ",\n";
        out += "  \"description\": " +
               qec::jsonQuote(description_) + ",\n";
        out += "  \"scale\": " +
               qec::formatSci(qec::benchScale()) + ",\n";
        out += "  \"threads\": " +
               std::to_string(lerOptions(0).resolvedThreads()) +
               ",\n";
        out += "  \"samples_per_k_override\": " +
               std::to_string(cli_.samplesPerK) + ",\n";
        out += "  \"repeat\": " + std::to_string(cli_.repeat) +
               ",\n";
        out += "  \"spec_filter\": " + qec::jsonQuote(cli_.spec) +
               ",\n";
        out += "  \"elapsed_seconds\": " +
               qec::formatSci(elapsed) + ",\n";
        out += "  \"notes\": {";
        for (size_t i = 0; i < notes_.size(); ++i) {
            out += (i ? ", " : "") +
                   qec::jsonQuote(notes_[i].first) + ": " +
                   qec::jsonQuote(notes_[i].second);
        }
        out += "},\n  \"tables\": [\n";
        for (size_t i = 0; i < tables_.size(); ++i) {
            out += "    " + tables_[i];
            out += i + 1 < tables_.size() ? ",\n" : "\n";
        }
        out += "  ]\n}\n";
        const bool wrote = std::fputs(out.c_str(), f) >= 0;
        const bool closed = std::fclose(f) == 0;
        if (!wrote || !closed) {
            std::fprintf(stderr,
                         "%s: failed writing %s (disk full?)\n",
                         name_.c_str(), cli_.jsonPath.c_str());
            return false;
        }
        std::printf("[%s] JSON report written to %s\n",
                    name_.c_str(), cli_.jsonPath.c_str());
        return true;
    }

    std::string name_;
    std::string description_;
    BenchCli cli_;
    /** Whether any specEnabled() call accepted a config. */
    mutable bool specMatched_ = false;
    std::chrono::steady_clock::time_point start_;
    std::vector<std::string> tables_;
    std::vector<std::pair<std::string, std::string>> notes_;
};

} // namespace qecbench

#endif // QEC_BENCH_COMMON_HPP
