/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries.
 *
 * Every bench is a standalone executable that prints the measured
 * reproduction next to the paper's reported values. Sample counts
 * scale with the QEC_BENCH_SCALE environment variable (default 1.0);
 * raise it for tighter error bars.
 */

#ifndef QEC_BENCH_COMMON_HPP
#define QEC_BENCH_COMMON_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "qec/qec.hpp"

namespace qecbench
{

/** Default per-k sample count for LER estimation, after scaling. */
inline uint64_t
scaledSamples(uint64_t base)
{
    const double scaled = static_cast<double>(base) *
                          qec::benchScale();
    return scaled < 16 ? 16 : static_cast<uint64_t>(scaled);
}

/** Standard estimator options used across the LER benches. */
inline qec::LerOptions
standardLerOptions(uint64_t base_samples)
{
    qec::LerOptions options;
    options.kMax = 24;
    options.samplesPerK = scaledSamples(base_samples);
    // k <= 2 cannot defeat the code or overflow Astrea (each
    // graphlike mechanism flips at most 2 detectors), so P_f = 0.
    options.skipBelowK = 3;
    return options;
}

/** Estimate the LER of one named decoder configuration. */
inline qec::LerEstimate
runLer(const qec::ExperimentContext &ctx, const std::string &name,
       uint64_t base_samples,
       const qec::SampleObserver &observer = nullptr)
{
    auto decoder =
        qec::makeDecoder(name, ctx.graph(), ctx.paths());
    return qec::estimateLer(ctx, *decoder,
                            standardLerOptions(base_samples),
                            observer);
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("==========================================================\n"
                "%s — %s\n"
                "Promatch reproduction (see EXPERIMENTS.md); "
                "QEC_BENCH_SCALE=%g\n"
                "==========================================================\n",
                experiment, description, qec::benchScale());
}

} // namespace qecbench

#endif // QEC_BENCH_COMMON_HPP
