/**
 * Streaming decode service: sustained QPS and tail latency.
 *
 * Drives a DecodeServer over pre-drawn d = 11, p = 1e-4 syndrome
 * streams in two phases:
 *
 *  1. closed loop — a producer submits as fast as admission allows
 *     for QEC_SERVE_SECONDS; completions/second is the sustained
 *     saturation QPS of the worker pool;
 *  2. open loop — submissions are paced at a fixed offered rate
 *     (QEC_SERVE_QPS, default 70% of the measured saturation), the
 *     regime where queueing delay, not service time, shapes the
 *     tail; p50/p99/p999 of submit-to-completion latency are
 *     reported from the server's histograms.
 *
 * Shared CLI (docs/benchmarks.md): --threads sets the worker pool
 * size (0 = one per hardware thread), --repeat reports the median
 * of N runs per phase, --json writes the report
 * (BENCH_serve_latency.json is the committed trajectory). Extra
 * knobs ride environment variables so the shared CLI stays shared:
 *
 *   QEC_SERVE_SECONDS  measured seconds per phase (default 2)
 *   QEC_SERVE_QPS      open-loop offered load (default 0 =
 *                      0.7 x measured saturation)
 *   QEC_SERVE_RING     request-slot / ring capacity (default 256)
 *   QEC_SERVE_POOL     pre-drawn stream pool size (default 2048)
 */

#include "bench_common.hpp"

#include <atomic>
#include <thread>

namespace
{

double
envDouble(const char *name, double fallback)
{
    const char *text = std::getenv(name);
    if (!text || !*text) {
        return fallback;
    }
    char *end = nullptr;
    const double parsed = std::strtod(text, &end);
    return (end && *end == '\0' && parsed > 0.0) ? parsed
                                                 : fallback;
}

struct PhaseResult
{
    double offeredQps = 0.0; //!< 0 = closed loop (no pacing).
    double achievedQps = 0.0;
    double p50 = 0.0, p99 = 0.0, p999 = 0.0;
    double servicP50 = 0.0;
    uint64_t completed = 0;
    uint64_t rejected = 0;
};

/** One measured phase over a running server; stats are reset
 *  before and harvested after a full drain. */
PhaseResult
runPhase(qec::DecodeServer &server,
         const std::vector<qec::SyndromeStream> &pool,
         double seconds, double offeredQps)
{
    using clock = std::chrono::steady_clock;
    server.resetStats();

    const auto start = clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(seconds));
    uint64_t submitted = 0;
    size_t next = 0;
    while (clock::now() < deadline) {
        if (offeredQps > 0.0) {
            // Open loop: each request has a scheduled arrival time;
            // a request the ring rejects at its arrival is dropped
            // (counted), not retried — that is the backpressure
            // contract under offered load.
            const auto due =
                start +
                std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(submitted) /
                        offeredQps));
            while (clock::now() < due) {
                std::this_thread::yield();
            }
            server.submit(pool[next], next);
            ++submitted;
        } else {
            // Closed loop: retry until admitted — measures the
            // pool's saturation throughput.
            while (!server.submit(pool[next], next)) {
                std::this_thread::yield();
            }
            ++submitted;
        }
        next = (next + 1) % pool.size();
    }
    server.drain();
    const double elapsed =
        std::chrono::duration<double>(clock::now() - start)
            .count();

    const qec::ServeStats stats = server.stats();
    PhaseResult r;
    r.offeredQps = offeredQps;
    r.achievedQps =
        static_cast<double>(stats.completed) / elapsed;
    r.completed = stats.completed;
    r.rejected = stats.rejected;
    r.p50 = stats.latency.quantile(0.50);
    r.p99 = stats.latency.quantile(0.99);
    r.p999 = stats.latency.quantile(0.999);
    r.servicP50 = stats.service.quantile(0.50);
    return r;
}

std::string
formatNs(double ns)
{
    return qec::formatFixed(ns / 1e3, 1) + " us";
}

} // namespace

int
main(int argc, char **argv)
{
    qecbench::Bench bench(
        argc, argv, "serve_latency",
        "streaming decode service: sustained QPS and tail "
        "latency, d = 11, p = 1e-4");

    const std::string spec = bench.specOr("pinball+astrea");
    const double seconds =
        envDouble("QEC_SERVE_SECONDS", 2.0) * qec::benchScale();
    const double offeredEnv = envDouble("QEC_SERVE_QPS", 0.0);
    const int ringCapacity =
        static_cast<int>(envDouble("QEC_SERVE_RING", 256));
    const int poolSize =
        static_cast<int>(envDouble("QEC_SERVE_POOL", 2048));
    const int workers =
        bench.cli().threads
            ? bench.cli().threads
            : static_cast<int>(
                  std::thread::hardware_concurrency());

    const auto &ctx = qec::ExperimentContext::get(11, 1e-4);
    const int detPerRound = static_cast<int>(
        ctx.experiment().circuit.numDetectors() /
        static_cast<size_t>(ctx.rounds() + 1));
    std::printf("\nsampling %d streams (%d rounds each)...\n",
                poolSize, ctx.rounds());
    const auto pool =
        qec::sampleStreams(ctx, 0x5e2e, poolSize);

    auto proto = qec::build(qec::DecoderSpec::parse(spec),
                            ctx.graph(), ctx.paths());
    qec::ServeConfig config;
    config.workers = workers;
    config.queueCapacity = ringCapacity;
    qec::DecodeServer server(*proto, detPerRound, config);
    std::printf("spec=%s workers=%d ring=%zu phase=%.2fs\n",
                spec.c_str(), workers,
                static_cast<size_t>(config.queueCapacity),
                seconds);

    // Warmup: every worker's scratch reaches steady capacity.
    runPhase(server, pool, std::min(seconds, 0.25), 0.0);

    std::vector<double> satQps, satP50;
    std::vector<double> openP50, openP99, openP999, openQps,
        openDrop;
    double offered = 0.0;
    for (int rep = 0; rep < bench.cli().repeat; ++rep) {
        const PhaseResult sat =
            runPhase(server, pool, seconds, 0.0);
        satQps.push_back(sat.achievedQps);
        satP50.push_back(sat.p50);
        // Offered load fixed across repeats, from the first
        // saturation measurement (or the env override).
        if (offered == 0.0) {
            offered = offeredEnv > 0.0 ? offeredEnv
                                       : 0.7 * sat.achievedQps;
        }
        const PhaseResult open =
            runPhase(server, pool, seconds, offered);
        openQps.push_back(open.achievedQps);
        openP50.push_back(open.p50);
        openP99.push_back(open.p99);
        openP999.push_back(open.p999);
        openDrop.push_back(static_cast<double>(open.rejected));
    }
    server.stop();

    const double sustained = qecbench::medianOf(satQps);
    const double p50 = qecbench::medianOf(openP50);
    const double p99 = qecbench::medianOf(openP99);
    const double p999 = qecbench::medianOf(openP999);

    qec::ReportTable table(
        "serving " + spec + ", d = 11, p = 1e-4 (" +
            std::to_string(workers) + " workers)",
        {"phase", "offered/s", "achieved/s", "p50", "p99",
         "p999", "drops"});
    table.addRow({"closed-loop", "max",
                  qec::formatFixed(sustained, 0),
                  formatNs(qecbench::medianOf(satP50)), "-", "-",
                  "0"});
    table.addRow({"open-loop", qec::formatFixed(offered, 0),
                  qec::formatFixed(qecbench::medianOf(openQps), 0),
                  formatNs(p50), formatNs(p99), formatNs(p999),
                  qec::formatFixed(qecbench::medianOf(openDrop),
                                   0)});
    bench.emit(table);

    bench.note("serve_sustained_qps", sustained);
    bench.note("serve_offered_qps", offered);
    bench.note("serve_p50_ns", p50);
    bench.note("serve_p99_ns", p99);
    bench.note("serve_p999_ns", p999);
    bench.note("hardware_threads",
               static_cast<double>(
                   std::thread::hardware_concurrency()));
    if (std::thread::hardware_concurrency() <= 1) {
        bench.note(
            "scaling_note",
            "single-CPU host: producer and workers share one "
            "core, so tail latencies include scheduling noise");
    }
    return bench.finish();
}
