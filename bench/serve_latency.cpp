/**
 * Streaming decode service: sustained QPS and tail latency.
 *
 * Drives a DecodeServer over pre-drawn d = 11, p = 1e-4 syndrome
 * streams in two phases:
 *
 *  1. closed loop — a producer submits as fast as admission allows
 *     for QEC_SERVE_SECONDS; completions/second is the sustained
 *     saturation QPS of the worker pool;
 *  2. open loop — submissions are paced at a fixed offered rate
 *     (QEC_SERVE_QPS, default 70% of the measured saturation), the
 *     regime where queueing delay, not service time, shapes the
 *     tail; p50/p99/p999 of submit-to-completion latency are
 *     reported from the server's histograms. Arrivals go through
 *     submitWithRetry (3 bounded attempts), so transient ring-full
 *     blips are retried and only persistent saturation sheds;
 *  3. degraded — the same offered load against a second server
 *     whose degradation ladder (spec > sparse > pinball-commit)
 *     runs under a per-tier decode budget derived from the healthy
 *     service p50, and every request carries a deadline derived
 *     from the healthy p99: the latency floor the service keeps
 *     when it is too slow for its budget (docs/api.md
 *     §Robustness).
 *
 * The healthy phases run the ladder with the budget disabled,
 * which is bit-identical to the primary stack alone; the
 * serve_healthy_* notes must stay zero (CI's bench-smoke job warns
 * otherwise).
 *
 * Shared CLI (docs/benchmarks.md): --threads sets the worker pool
 * size (0 = one per hardware thread), --repeat reports the median
 * of N runs per phase, --json writes the report
 * (BENCH_serve_latency.json is the committed trajectory). Extra
 * knobs ride environment variables so the shared CLI stays shared:
 *
 *   QEC_SERVE_SECONDS     measured seconds per phase (default 2)
 *   QEC_SERVE_QPS         open-loop offered load (default 0 =
 *                         0.7 x measured saturation)
 *   QEC_SERVE_RING        request-slot / ring capacity (default
 *                         256)
 *   QEC_SERVE_POOL        pre-drawn stream pool size (default
 *                         2048)
 *   QEC_SERVE_BUDGET_NS   degraded-phase per-tier budget (default
 *                         0 = 0.5 x healthy service p50)
 *   QEC_SERVE_DEADLINE_NS degraded-phase per-request deadline
 *                         (default 0 = healthy open-loop p99)
 */

#include "bench_common.hpp"

#include <atomic>
#include <thread>

namespace
{

double
envDouble(const char *name, double fallback)
{
    const char *text = std::getenv(name);
    if (!text || !*text) {
        return fallback;
    }
    char *end = nullptr;
    const double parsed = std::strtod(text, &end);
    return (end && *end == '\0' && parsed > 0.0) ? parsed
                                                 : fallback;
}

struct PhaseResult
{
    double offeredQps = 0.0; //!< 0 = closed loop (no pacing).
    double achievedQps = 0.0;
    double p50 = 0.0, p99 = 0.0, p999 = 0.0;
    double servicP50 = 0.0;
    uint64_t completed = 0;
    uint64_t rejected = 0;
    uint64_t expired = 0; //!< Deadline passed while queued.
    uint64_t retries = 0; //!< Open loop: extra submit attempts.
    uint64_t shed = 0;    //!< Open loop: dropped after retries.
};

/** One measured phase over a running server; stats are reset
 *  before and harvested after a full drain. Open-loop arrivals go
 *  through submitWithRetry; deadlineNs (0 = none) is attached to
 *  every request. */
PhaseResult
runPhase(qec::DecodeServer &server,
         const std::vector<qec::SyndromeStream> &pool,
         double seconds, double offeredQps,
         uint64_t deadlineNs = 0)
{
    using clock = std::chrono::steady_clock;
    server.resetStats();
    qec::RetryPolicy retryPolicy;
    retryPolicy.maxAttempts = 3;
    retryPolicy.initialBackoffNs = 2'000;
    retryPolicy.maxBackoffNs = 20'000;
    uint64_t retries = 0, shed = 0;

    const auto start = clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(seconds));
    uint64_t submitted = 0;
    size_t next = 0;
    while (clock::now() < deadline) {
        if (offeredQps > 0.0) {
            // Open loop: each request has a scheduled arrival
            // time; a rejected arrival rides a short bounded
            // backoff (submitWithRetry) and is shed only when
            // saturation persists across every attempt.
            const auto due =
                start +
                std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(submitted) /
                        offeredQps));
            while (clock::now() < due) {
                std::this_thread::yield();
            }
            const qec::SubmitResult r = server.submitWithRetry(
                pool[next], next, deadlineNs, retryPolicy);
            retries += static_cast<uint64_t>(r.retries);
            if (!r.accepted) {
                ++shed;
            }
            ++submitted;
        } else {
            // Closed loop: retry until admitted — measures the
            // pool's saturation throughput.
            while (!server.submit(pool[next], next, deadlineNs)) {
                std::this_thread::yield();
            }
            ++submitted;
        }
        next = (next + 1) % pool.size();
    }
    server.drain();
    const double elapsed =
        std::chrono::duration<double>(clock::now() - start)
            .count();

    const qec::ServeStats stats = server.stats();
    PhaseResult r;
    r.offeredQps = offeredQps;
    r.achievedQps =
        static_cast<double>(stats.completed) / elapsed;
    r.completed = stats.completed;
    r.rejected = stats.rejected;
    r.expired = stats.expired;
    r.retries = retries;
    r.shed = shed;
    r.p50 = stats.latency.quantile(0.50);
    r.p99 = stats.latency.quantile(0.99);
    r.p999 = stats.latency.quantile(0.999);
    r.servicP50 = stats.service.quantile(0.50);
    return r;
}

std::string
formatNs(double ns)
{
    return qec::formatFixed(ns / 1e3, 1) + " us";
}

} // namespace

int
main(int argc, char **argv)
{
    qecbench::Bench bench(
        argc, argv, "serve_latency",
        "streaming decode service: sustained QPS and tail "
        "latency, d = 11, p = 1e-4");

    const std::string spec = bench.specOr("pinball+astrea");
    const double seconds =
        envDouble("QEC_SERVE_SECONDS", 2.0) * qec::benchScale();
    const double offeredEnv = envDouble("QEC_SERVE_QPS", 0.0);
    const int ringCapacity =
        static_cast<int>(envDouble("QEC_SERVE_RING", 256));
    const int poolSize =
        static_cast<int>(envDouble("QEC_SERVE_POOL", 2048));
    const int workers =
        bench.cli().threads
            ? bench.cli().threads
            : static_cast<int>(
                  std::thread::hardware_concurrency());

    const auto &ctx = qec::ExperimentContext::get(11, 1e-4);
    const int detPerRound = static_cast<int>(
        ctx.experiment().circuit.numDetectors() /
        static_cast<size_t>(ctx.rounds() + 1));
    std::printf("\nsampling %d streams (%d rounds each)...\n",
                poolSize, ctx.rounds());
    const auto pool =
        qec::sampleStreams(ctx, 0x5e2e, poolSize);

    // The healthy server runs the full degradation ladder with the
    // budget disabled — bit-identical to the primary stack alone
    // (tier 0 answers everything, no clock reads in the ladder).
    auto proto = qec::makeDegradationLadder(
        ctx.graph(), ctx.paths(), {spec, "sparse"}, "pinball");
    qec::ServeConfig config;
    config.workers = workers;
    config.queueCapacity = ringCapacity;
    qec::DecodeServer server(*proto, detPerRound, config);
    std::printf("spec=%s workers=%d ring=%zu phase=%.2fs\n",
                spec.c_str(), workers,
                static_cast<size_t>(config.queueCapacity),
                seconds);

    // Warmup: every worker's scratch reaches steady capacity.
    runPhase(server, pool, std::min(seconds, 0.25), 0.0);

    std::vector<double> satQps, satP50;
    std::vector<double> openP50, openP99, openP999, openQps,
        openShed, openRetry, openServiceP50;
    uint64_t healthyExpired = 0;
    double offered = 0.0;
    for (int rep = 0; rep < bench.cli().repeat; ++rep) {
        const PhaseResult sat =
            runPhase(server, pool, seconds, 0.0);
        satQps.push_back(sat.achievedQps);
        satP50.push_back(sat.p50);
        healthyExpired += sat.expired;
        // Offered load fixed across repeats, from the first
        // saturation measurement (or the env override).
        if (offered == 0.0) {
            offered = offeredEnv > 0.0 ? offeredEnv
                                       : 0.7 * sat.achievedQps;
        }
        const PhaseResult open =
            runPhase(server, pool, seconds, offered);
        openQps.push_back(open.achievedQps);
        openP50.push_back(open.p50);
        openP99.push_back(open.p99);
        openP999.push_back(open.p999);
        openShed.push_back(static_cast<double>(open.shed));
        openRetry.push_back(static_cast<double>(open.retries));
        openServiceP50.push_back(open.servicP50);
        healthyExpired += open.expired;
    }
    // No budget and no deadlines: every decode must have been
    // answered by tier 0 (anything else is a healthy-path
    // regression the bench-smoke guard flags).
    const qec::FallbackStats healthyLadder = proto->stats();
    uint64_t healthyDegraded = 0;
    for (size_t i = 1; i < healthyLadder.tierUsed.size(); ++i) {
        healthyDegraded += healthyLadder.tierUsed[i];
    }
    server.stop();

    const double sustained = qecbench::medianOf(satQps);
    const double p50 = qecbench::medianOf(openP50);
    const double p99 = qecbench::medianOf(openP99);
    const double p999 = qecbench::medianOf(openP999);
    const double serviceP50 = qecbench::medianOf(openServiceP50);

    // Degraded phase: a second server whose ladder runs each tier
    // under a budget too tight for the primary stack's median
    // decode, with every request carrying a deadline at the
    // healthy p99 — the floor the service holds when overloaded.
    const double budgetNs =
        envDouble("QEC_SERVE_BUDGET_NS", 0.0) > 0.0
            ? envDouble("QEC_SERVE_BUDGET_NS", 0.0)
            : 0.5 * serviceP50;
    const uint64_t deadlineNs = static_cast<uint64_t>(
        envDouble("QEC_SERVE_DEADLINE_NS", 0.0) > 0.0
            ? envDouble("QEC_SERVE_DEADLINE_NS", 0.0)
            : p99);
    qec::FallbackConfig degradedConfig;
    degradedConfig.budgetNs = budgetNs;
    auto degradedProto = qec::makeDegradationLadder(
        ctx.graph(), ctx.paths(), {spec, "sparse"}, "pinball",
        degradedConfig);
    qec::DecodeServer degradedServer(*degradedProto, detPerRound,
                                     config);
    runPhase(degradedServer, pool, std::min(seconds, 0.25),
             offered, deadlineNs); // Warmup.
    degradedProto->resetStats();
    std::vector<double> degP50, degP99, degQps, degExpired;
    for (int rep = 0; rep < bench.cli().repeat; ++rep) {
        const PhaseResult deg = runPhase(
            degradedServer, pool, seconds, offered, deadlineNs);
        degP50.push_back(deg.p50);
        degP99.push_back(deg.p99);
        degQps.push_back(deg.achievedQps);
        degExpired.push_back(static_cast<double>(deg.expired));
    }
    const qec::FallbackStats degradedLadder =
        degradedProto->stats();
    const auto *commitTier =
        dynamic_cast<const qec::PredecodeCommitDecoder *>(
            &degradedProto->tier(degradedProto->tierCount() - 1));
    degradedServer.stop();

    qec::ReportTable table(
        "serving " + spec + ", d = 11, p = 1e-4 (" +
            std::to_string(workers) + " workers)",
        {"phase", "offered/s", "achieved/s", "p50", "p99",
         "p999", "drops"});
    table.addRow({"closed-loop", "max",
                  qec::formatFixed(sustained, 0),
                  formatNs(qecbench::medianOf(satP50)), "-", "-",
                  "0"});
    table.addRow({"open-loop", qec::formatFixed(offered, 0),
                  qec::formatFixed(qecbench::medianOf(openQps), 0),
                  formatNs(p50), formatNs(p99), formatNs(p999),
                  qec::formatFixed(qecbench::medianOf(openShed),
                                   0)});
    table.addRow({"degraded", qec::formatFixed(offered, 0),
                  qec::formatFixed(qecbench::medianOf(degQps), 0),
                  formatNs(qecbench::medianOf(degP50)),
                  formatNs(qecbench::medianOf(degP99)), "-",
                  qec::formatFixed(qecbench::medianOf(degExpired),
                                   0) +
                      " exp"});
    bench.emit(table);

    bench.note("serve_sustained_qps", sustained);
    bench.note("serve_offered_qps", offered);
    bench.note("serve_p50_ns", p50);
    bench.note("serve_p99_ns", p99);
    bench.note("serve_p999_ns", p999);
    bench.note("serve_open_retries",
               qecbench::medianOf(openRetry));
    bench.note("serve_open_shed", qecbench::medianOf(openShed));
    // Healthy-path guard rails: both must be zero (CI warns).
    bench.note("serve_healthy_expired",
               static_cast<double>(healthyExpired));
    bench.note("serve_healthy_degraded",
               static_cast<double>(healthyDegraded));
    // Degraded-mode profile.
    bench.note("serve_degraded_budget_ns", budgetNs);
    bench.note("serve_degraded_deadline_ns",
               static_cast<double>(deadlineNs));
    bench.note("serve_degraded_p50_ns",
               qecbench::medianOf(degP50));
    bench.note("serve_degraded_p99_ns",
               qecbench::medianOf(degP99));
    bench.note("serve_degraded_expired",
               qecbench::medianOf(degExpired));
    bench.note("serve_degraded_escalations",
               static_cast<double>(degradedLadder.escalations));
    bench.note("serve_degraded_overruns",
               static_cast<double>(degradedLadder.overruns));
    for (size_t i = 0; i < degradedLadder.tierUsed.size(); ++i) {
        bench.note("serve_degraded_tier" + std::to_string(i),
                   static_cast<double>(
                       degradedLadder.tierUsed[i]));
    }
    if (commitTier) {
        bench.note("serve_degraded_flagged",
                   static_cast<double>(
                       commitTier->flaggedDefects()));
    }
    bench.note("hardware_threads",
               static_cast<double>(
                   std::thread::hardware_concurrency()));
    if (std::thread::hardware_concurrency() <= 1) {
        bench.note(
            "scaling_note",
            "single-CPU host: producer and workers share one "
            "core, so tail latencies include scheduling noise");
    }
    return bench.finish();
}
