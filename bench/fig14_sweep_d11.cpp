/**
 * @file
 * Figure 14: LER of the six decoder configurations for
 * 1e-4 <= p <= 5e-4 at d = 11. Paper shape: Promatch||AG remains
 * within 1.1x of MWPM's LER across the sweep.
 */

#include "fig_sweep_common.hpp"

int
main()
{
    qecbench::banner("Figure 14", "LER vs p sweep, d = 11");
    qecbench::runSweep(11, 1.1);
    return 0;
}
