/**
 * @file
 * Figure 14: LER of the six decoder configurations for
 * 1e-4 <= p <= 5e-4 at d = 11. Paper shape: Promatch||AG remains
 * within 1.1x of MWPM's LER across the sweep.
 */

#include "fig_sweep_common.hpp"

int
main(int argc, char **argv)
{
    qecbench::Bench bench(argc, argv, "fig14_sweep_d11",
                          "LER vs p sweep, d = 11");
    return qecbench::runSweep(bench, 11, 1.1);
}
