/**
 * @file
 * Table 2: logical error rate of the main decoder configurations at
 * d = 11 and d = 13, p = 1e-4.
 *
 * Paper values (ratios vs MWPM in parentheses):
 *   MWPM (ideal)      d11 1.8e-13 (1x)    d13 3.4e-15 (1x)
 *   Promatch || AG    d11 1.8e-13 (1x)    d13 3.4e-15 (1x)
 *   Promatch + Astrea d11 4.5e-13 (2.5x)  d13 2.6e-14 (7.7x)
 *   Astrea-G          d11 4.5e-13 (2.5x)  d13 1.4e-13 (43x)
 *   Smith || AG       d11 2.5e-13 (1.3x)  d13 1.5e-14 (4.5x)
 *   Smith + Astrea    d11 4.4e-11 (240x)  d13 6.9e-11 (20412x)
 *
 * Methodology note (see EXPERIMENTS.md): the Eq. 1 estimator floors
 * at ~1e-17 under uniform k-fault injection, so alongside the LER we
 * report the discriminating statistic P(fail | high HW), which is
 * where the real-time decoders actually differ.
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

namespace
{

struct Row
{
    const char *config;
    const char *label;
    double paperD11;
    double paperD13;
};

// A paper value of 0 marks configurations the paper did not
// evaluate (the registry-onboarded Pinball predecoder); the table
// prints "-" there.
constexpr Row kRows[] = {
    {"mwpm", "MWPM (Ideal)", 1.8e-13, 3.4e-15},
    {"promatch_par_ag", "Promatch || AG", 1.8e-13, 3.4e-15},
    {"promatch_astrea", "Promatch + Astrea", 4.5e-13, 2.6e-14},
    {"astrea_g", "Astrea-G (AG)", 4.5e-13, 1.4e-13},
    {"smith_par_ag", "Smith || AG", 2.5e-13, 1.5e-14},
    {"smith_astrea", "Smith + Astrea", 4.4e-11, 6.9e-11},
    {"pinball_par_ag", "Pinball || AG", 0.0, 0.0},
    {"pinball_astrea", "Pinball + Astrea", 0.0, 0.0},
};

struct Measured
{
    double ler;
    double condHighHw;
};

Measured
measure(const Bench &bench, const ExperimentContext &ctx,
        const char *config)
{
    HwConditionalStats stats;
    const LerEstimate est = bench.runLer(
        ctx, config, 1200, [&](const SampleView &view) {
            stats.record(static_cast<int>(view.defects.size()),
                         view.weight, view.failed);
        });
    return {est.ler, stats.conditionalFailRate(11, 64)};
}

} // namespace

int
main(int argc, char **argv)
{
    Bench bench(argc, argv, "table2_ler_main",
                "LER of main decoder configs, p = 1e-4");

    ReportTable table(
        "Table 2: LER at p = 1e-4 (measured vs paper)",
        {"Decoder", "d=11 LER", "P(f|HW>10)", "paper d=11",
         "d=13 LER", "P(f|HW>10)", "paper d=13"});

    const auto &ctx11 = ExperimentContext::get(11, 1e-4);
    const auto &ctx13 = ExperimentContext::get(13, 1e-4);

    for (const Row &row : kRows) {
        if (!bench.specEnabled(row.config)) {
            continue;
        }
        const Measured m11 = measure(bench, ctx11, row.config);
        const Measured m13 = measure(bench, ctx13, row.config);
        const auto paper = [](double value) {
            return value > 0.0 ? formatSci(value)
                               : std::string("-");
        };
        table.addRow({row.label, formatSci(m11.ler),
                      formatSci(m11.condHighHw),
                      paper(row.paperD11), formatSci(m13.ler),
                      formatSci(m13.condHighHw),
                      paper(row.paperD13)});
        std::printf("  done: %s\n", row.label);
    }
    bench.emit(table);
    std::printf(
        "\nShape checks (see EXPERIMENTS.md): Promatch||AG <="
        " Promatch+Astrea; Astrea-G\ncollapses at d=13 while"
        " Promatch holds; Smith+Astrea is orders of magnitude\n"
        "worse; exact MWPM shows no failures at the sampled"
        " resolution (its true LER\nis below the estimator"
        " floor).\n");
    return bench.finish();
}
