/**
 * @file
 * Table 7: FPGA utilization of the Promatch edge-processing
 * pipeline.
 *
 * Substitution (DESIGN.md §2): no FPGA toolchain is available, so
 * this reports the analytical resource model of the Fig. 10/11
 * pipeline next to the paper's Kintex UltraScale+ synthesis result
 * (3% LUT, 1% FF at 250 MHz).
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

int
main(int argc, char **argv)
{
    Bench bench(argc, argv, "table7_fpga_model",
                "FPGA utilization (analytical model)");
    bench.rejectSpecFilter(
        "the analytical FPGA model has no decoder configuration");

    ReportTable table(
        "Table 7: Promatch edge-processing pipeline utilization",
        {"d", "lanes", "LUTs", "LUT %", "FFs", "FF %", "freq",
         "paper"});
    for (int d : {11, 13}) {
        const auto &ctx = ExperimentContext::get(d, 1e-4);
        for (int lanes : {1, 8}) {
            const FpgaEstimate est =
                estimateFpga(ctx.graph(), lanes);
            table.addRow(
                {std::to_string(d), std::to_string(lanes),
                 std::to_string(est.luts),
                 formatFixed(est.lutPercent, 2) + "%",
                 std::to_string(est.flipFlops),
                 formatFixed(est.ffPercent, 2) + "%",
                 formatFixed(est.frequencyMHz, 0) + " MHz",
                 "3% LUT / 1% FF @250MHz"});
        }
    }
    bench.emit(table);
    std::printf(
        "\nShape check: the pipeline is tiny relative to a Kintex "
        "UltraScale+ (the\npaper synthesizes at 3%% LUT / 1%% FF); "
        "the model stays well below that even\nwith 8 parallel "
        "lanes, consistent with \"one can run multiple pipelines "
        "in\nparallel\" (§6.4).\n");
    return bench.finish();
}
