/**
 * @file
 * Ablation study of Promatch's design choices (DESIGN.md §3):
 *
 *  1. Hardware #dependent singleton logic (Fig. 11) vs the exact
 *     graph recount — does the cheap hardware approximation cost
 *     accuracy?
 *  2. Adaptive HW target {10, 8, 6} vs a fixed target of 10 —
 *     what does adaptivity buy?
 *  3. Steps 3/4 disabled — how much coverage do the risky steps
 *     contribute?
 *  4. Astrea-G with an admissible search bound — how much of AG's
 *     gap to Promatch is the unbounded greedy search?
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

namespace
{

double
lerWithConfig(const Bench &bench, const ExperimentContext &ctx,
              const PromatchConfig &config,
              HwConditionalStats *stats)
{
    auto decoder = makeDecoder("promatch_astrea", ctx.graph(),
                               ctx.paths(), LatencyConfig{},
                               config);
    const LerEstimate est = estimateLer(
        ctx, *decoder, bench.lerOptions(800),
        [&](const SampleView &view) {
            if (stats) {
                stats->record(
                    static_cast<int>(view.defects.size()),
                    view.weight, view.failed);
            }
        });
    return est.ler;
}

} // namespace

int
main(int argc, char **argv)
{
    Bench bench(argc, argv, "ablation_promatch",
                "Promatch design-choice ablations, d = 13");
    bench.rejectSpecFilter(
        "the ablations sweep fixed PromatchConfig variants");
    const auto &ctx = ExperimentContext::get(13, 1e-4);

    ReportTable table(
        "Promatch ablations at d = 13, p = 1e-4",
        {"Variant", "LER", "P(fail | HW>10)"});

    {
        PromatchConfig base;
        HwConditionalStats stats;
        const double ler = lerWithConfig(bench, ctx, base, &stats);
        table.addRow({"baseline (paper config)", formatSci(ler),
                      formatSci(
                          stats.conditionalFailRate(11, 64))});
    }
    {
        PromatchConfig exact;
        exact.exactSingletonCheck = true;
        HwConditionalStats stats;
        const double ler = lerWithConfig(bench, ctx, exact, &stats);
        table.addRow({"exact singleton check", formatSci(ler),
                      formatSci(
                          stats.conditionalFailRate(11, 64))});
    }
    {
        PromatchConfig fixed;
        fixed.adaptiveTarget = false;
        fixed.fixedTarget = 10;
        HwConditionalStats stats;
        const double ler = lerWithConfig(bench, ctx, fixed, &stats);
        table.addRow({"fixed target HW=10", formatSci(ler),
                      formatSci(
                          stats.conditionalFailRate(11, 64))});
    }
    {
        PromatchConfig no34;
        no34.enableStep3 = false;
        no34.enableStep4 = false;
        HwConditionalStats stats;
        const double ler = lerWithConfig(bench, ctx, no34, &stats);
        table.addRow({"steps 3+4 disabled", formatSci(ler),
                      formatSci(
                          stats.conditionalFailRate(11, 64))});
    }
    {
        // Astrea-G with an admissible bound ("smarter AG").
        LatencyConfig smart;
        smart.astreaGUseBound = true;
        auto ag = makeDecoder("astrea_g", ctx.graph(), ctx.paths(),
                              smart);
        HwConditionalStats stats;
        const LerEstimate est = estimateLer(
            ctx, *ag, bench.lerOptions(800),
            [&](const SampleView &view) {
                stats.record(
                    static_cast<int>(view.defects.size()),
                    view.weight, view.failed);
            });
        table.addRow({"Astrea-G + admissible bound",
                      formatSci(est.ler),
                      formatSci(
                          stats.conditionalFailRate(11, 64))});
    }
    {
        auto ag =
            makeDecoder("astrea_g", ctx.graph(), ctx.paths());
        HwConditionalStats stats;
        const LerEstimate est = estimateLer(
            ctx, *ag, bench.lerOptions(800),
            [&](const SampleView &view) {
                stats.record(
                    static_cast<int>(view.defects.size()),
                    view.weight, view.failed);
            });
        table.addRow({"Astrea-G (paper model)",
                      formatSci(est.ler),
                      formatSci(
                          stats.conditionalFailRate(11, 64))});
    }
    bench.emit(table);
    std::printf(
        "\nReading: the hardware singleton shortcut and the "
        "adaptive target should\ntrack the baseline closely; "
        "disabling Steps 3/4 removes coverage for the\nrare "
        "singleton-heavy patterns; bounding Astrea-G's search "
        "recovers much of\nits gap, showing the gap is a search-"
        "budget artifact, as the paper argues.\n");
    return bench.finish();
}
