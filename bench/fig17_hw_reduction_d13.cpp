/**
 * @file
 * Figure 17: syndrome HW distribution before/after predecoding at
 * d = 13, p = 1e-4 (Promatch vs Smith et al.).
 */

#include "fig_hw_reduction_common.hpp"

int
main(int argc, char **argv)
{
    qecbench::Bench bench(argc, argv, "fig17_hw_reduction_d13",
                          "HW reduction by predecoding, d = 13");
    return qecbench::runHwReduction(bench, 13);
}
