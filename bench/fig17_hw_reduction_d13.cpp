/**
 * @file
 * Figure 17: syndrome HW distribution before/after predecoding at
 * d = 13, p = 1e-4 (Promatch vs Smith et al.).
 */

#include "fig_hw_reduction_common.hpp"

int
main()
{
    qecbench::banner("Figure 17",
                     "HW reduction by predecoding, d = 13");
    qecbench::runHwReduction(13);
    return 0;
}
