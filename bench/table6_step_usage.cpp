/**
 * @file
 * Table 6: how often each Promatch step is the deepest one needed,
 * over high-HW syndromes at p = 1e-4 (occurrence-weighted).
 *
 * Paper values (fraction of samples processed up to each step):
 *           d = 11        d = 13
 *   Step 1  0.9956        0.9983
 *   Step 2  0.00439       0.00167
 *   Step 3  6.1e-11       7.3e-11
 *   Step 4  2.4e-11       1.8e-11
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

int
main(int argc, char **argv)
{
    Bench bench(argc, argv, "table6_step_usage",
                "Promatch step usage frequency");

    ReportTable table(
        "Table 6: deepest Promatch step needed (weighted fraction "
        "of high-HW syndromes)",
        {"Step", "d=11", "paper d=11", "d=13", "paper d=13"});

    const double paper11[5] = {0, 0.9956, 0.00439, 6.1e-11,
                               2.4e-11};
    const double paper13[5] = {0, 0.9983, 0.00167, 7.3e-11,
                               1.8e-11};
    double measured[2][5] = {};

    for (int di = 0; di < 2; ++di) {
        const int d = di == 0 ? 11 : 13;
        const auto &ctx = ExperimentContext::get(d, 1e-4);
        auto decoder = makeDecoder(
            bench.specOr("promatch_astrea"), ctx.graph(),
            ctx.paths());

        // Step usage rides on the parallel LER engine's trace
        // observer over the high-HW population.
        LerOptions options = bench.lerOptions(500);
        options.skipBelowK = 5; // k < 5 cannot produce HW > 10.
        options.seed = 0x6ab1e + static_cast<uint64_t>(d);
        options.collectTraces = true; // Step usage is trace data.
        // Only high-HW syndromes engage the predecoder steps;
        // skip the decode for the rest.
        options.decodeFilter =
            [](int, const std::vector<uint32_t> &defects) {
                return defects.size() > 10;
            };
        double weights[5] = {};
        estimateLer(ctx, *decoder, options,
                    [&](const SampleView &view) {
                        weights[view.trace->steps.deepest()] +=
                            view.weight;
                    });
        double total = 0.0;
        for (int s = 1; s <= 4; ++s) {
            total += weights[s];
        }
        for (int s = 1; s <= 4; ++s) {
            measured[di][s] = total > 0 ? weights[s] / total : 0;
        }
        std::printf("  done: d=%d\n", d);
    }

    for (int s = 1; s <= 4; ++s) {
        table.addRow({"Step " + std::to_string(s),
                      formatSci(measured[0][s]),
                      formatSci(paper11[s]),
                      formatSci(measured[1][s]),
                      formatSci(paper13[s])});
    }
    bench.emit(table);
    std::printf(
        "\nShape checks: Step 1 handles the overwhelming majority; "
        "Step 2 the next\norder of magnitude; Steps 3/4 are "
        "vanishingly rare but non-zero (the paper\nmeasures them "
        "at ~1e-11, far below this bench's default sampling "
        "depth —\nraise QEC_BENCH_SCALE to chase the tail).\n");
    return bench.finish();
}
