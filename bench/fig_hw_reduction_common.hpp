/**
 * @file
 * Shared driver for Figs. 16/17: the Hamming-weight distribution of
 * syndromes before and after predecoding with Promatch and with the
 * Smith et al. predecoder.
 *
 * Paper shape: Promatch always lands the residual HW at 10 or below
 * (adaptively at 6/8/10), while Smith leaves a tail beyond 10 that
 * the HW <= 10 main decoder cannot handle.
 */

#ifndef QEC_BENCH_FIG_HW_REDUCTION_COMMON_HPP
#define QEC_BENCH_FIG_HW_REDUCTION_COMMON_HPP

#include "bench_common.hpp"

namespace qecbench
{

inline void
runHwReduction(int distance)
{
    const auto &ctx = qec::ExperimentContext::get(distance, 1e-4);

    auto build = [&](const char *name) {
        return qec::makeDecoder(name, ctx.graph(), ctx.paths());
    };
    auto promatch = build("promatch_astrea");
    auto smith = build("smith_astrea");

    qec::ImportanceSampler sampler(ctx.dem(), 24);
    qec::Rng rng(0x9716);
    qec::WeightedHistogram before, after_promatch, after_smith;
    const uint64_t per_k = scaledSamples(400);
    double above10_before = 0, above10_pm = 0, above10_smith = 0;

    for (int k = 1; k <= 24; ++k) {
        const double weight =
            sampler.occurrenceProb(k) / static_cast<double>(per_k);
        for (uint64_t s = 0; s < per_k; ++s) {
            const auto sample = sampler.sample(k, rng);
            const int hw =
                static_cast<int>(sample.defects.size());
            before.add(hw, weight);
            if (hw > 10) {
                above10_before += weight;
            }

            qec::DecodeTrace trace;
            promatch->decode(sample.defects, &trace);
            const int hw_pm = trace.hwAfter;
            after_promatch.add(hw_pm, weight);
            if (hw_pm > 10) {
                above10_pm += weight;
            }

            smith->decode(sample.defects, &trace);
            const int hw_sm = trace.hwAfter;
            after_smith.add(hw_sm, weight);
            if (hw_sm > 10) {
                above10_smith += weight;
            }
        }
    }

    qec::ReportTable table(
        "HW distribution before/after predecoding, d = " +
            std::to_string(distance) + ", p = 1e-4",
        {"HW", "before", "after Promatch", "after Smith"});
    const int max_bin =
        std::max(before.maxBin(),
                 std::max(after_promatch.maxBin(),
                          after_smith.maxBin()));
    const double total = before.totalWeight();
    for (int hw = 0; hw <= max_bin; ++hw) {
        table.addRow(
            {std::to_string(hw),
             qec::formatSci(before.probabilityAt(hw, total)),
             qec::formatSci(
                 after_promatch.probabilityAt(hw, total)),
             qec::formatSci(
                 after_smith.probabilityAt(hw, total))});
    }
    table.print();

    std::printf(
        "\nP(HW > 10): before = %s, after Promatch = %s, after "
        "Smith = %s\nShape check (paper Figs. 16/17): Promatch "
        "leaves zero mass above HW 10;\nSmith leaves a tail the "
        "main decoder cannot handle.\n",
        qec::formatSci(above10_before / total).c_str(),
        qec::formatSci(above10_pm / total).c_str(),
        qec::formatSci(above10_smith / total).c_str());
}

} // namespace qecbench

#endif // QEC_BENCH_FIG_HW_REDUCTION_COMMON_HPP
