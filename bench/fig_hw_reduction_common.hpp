/**
 * @file
 * Shared driver for Figs. 16/17: the Hamming-weight distribution of
 * syndromes before and after predecoding with Promatch, with the
 * Smith et al. predecoder, and with the Pinball pattern-table
 * predecoder (not in the paper; onboarded via the registry — see
 * docs/api.md).
 *
 * Both predecoders are evaluated through the parallel LER engine on
 * the SAME syndrome stream: samples are pure functions of
 * (seed, k, i) via Rng::forSample, so two estimateLer runs with
 * identical options decode identical syndromes. Residual HW comes
 * from the per-sample DecodeTrace.
 *
 * Paper shape: Promatch always lands the residual HW at 10 or below
 * (adaptively at 6/8/10), while Smith leaves a tail beyond 10 that
 * the HW <= 10 main decoder cannot handle.
 */

#ifndef QEC_BENCH_FIG_HW_REDUCTION_COMMON_HPP
#define QEC_BENCH_FIG_HW_REDUCTION_COMMON_HPP

#include "bench_common.hpp"

namespace qecbench
{

inline int
runHwReduction(Bench &bench, int distance)
{
    bench.rejectSpecFilter("Figs. 16/17 compare the Promatch, "
                           "Smith, and Pinball predecoders on one "
                           "paired syndrome stream");
    const auto &ctx = qec::ExperimentContext::get(distance, 1e-4);

    qec::LerOptions options = bench.lerOptions(400);
    options.skipBelowK = 0; // Full HW distribution: decode every k.
    options.seed = 0x9716;
    options.collectTraces = true; // Residual HW lives in the trace.

    qec::WeightedHistogram before, after_promatch, after_smith,
        after_pinball;
    double above10_before = 0, above10_pm = 0, above10_smith = 0,
           above10_pinball = 0;

    auto run = [&](const char *config,
                   qec::WeightedHistogram &after, double &above10,
                   bool record_before) {
        auto decoder = qec::makeDecoder(config, ctx.graph(),
                                        ctx.paths());
        qec::estimateLer(
            ctx, *decoder, options,
            [&](const qec::SampleView &view) {
                if (record_before) {
                    const int hw = static_cast<int>(
                        view.defects.size());
                    before.add(hw, view.weight);
                    if (hw > 10) {
                        above10_before += view.weight;
                    }
                }
                const int residual = view.trace->hwAfter;
                after.add(residual, view.weight);
                if (residual > 10) {
                    above10 += view.weight;
                }
            });
    };
    run("promatch_astrea", after_promatch, above10_pm, true);
    run("smith_astrea", after_smith, above10_smith, false);
    run("pinball_astrea", after_pinball, above10_pinball, false);

    qec::ReportTable table(
        "HW distribution before/after predecoding, d = " +
            std::to_string(distance) + ", p = 1e-4",
        {"HW", "before", "after Promatch", "after Smith",
         "after Pinball"});
    const int max_bin = std::max(
        {before.maxBin(), after_promatch.maxBin(),
         after_smith.maxBin(), after_pinball.maxBin()});
    const double total = before.totalWeight();
    for (int hw = 0; hw <= max_bin; ++hw) {
        table.addRow(
            {std::to_string(hw),
             qec::formatSci(before.probabilityAt(hw, total)),
             qec::formatSci(
                 after_promatch.probabilityAt(hw, total)),
             qec::formatSci(after_smith.probabilityAt(hw, total)),
             qec::formatSci(
                 after_pinball.probabilityAt(hw, total))});
    }
    bench.emit(table);

    bench.note("p_hw_gt10_before", above10_before / total);
    bench.note("p_hw_gt10_after_promatch", above10_pm / total);
    bench.note("p_hw_gt10_after_smith", above10_smith / total);
    bench.note("p_hw_gt10_after_pinball", above10_pinball / total);
    std::printf(
        "\nP(HW > 10): before = %s, after Promatch = %s, after "
        "Smith = %s,\nafter Pinball = %s\nShape check (paper "
        "Figs. 16/17): Promatch leaves zero mass above HW 10 "
        "by\nconstruction; Smith leaves a tail the main decoder "
        "cannot handle. Pinball's\nrepeated peel rounds cut the "
        "tail even deeper than Smith — its weakness is\naccuracy "
        "(wrong local commits), not coverage (see the predecoder "
        "comparison\ntable in bench_ler_throughput).\n",
        qec::formatSci(above10_before / total).c_str(),
        qec::formatSci(above10_pm / total).c_str(),
        qec::formatSci(above10_smith / total).c_str(),
        qec::formatSci(above10_pinball / total).c_str());
    return bench.finish();
}

} // namespace qecbench

#endif // QEC_BENCH_FIG_HW_REDUCTION_COMMON_HPP
