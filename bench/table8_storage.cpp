/**
 * @file
 * Table 8: storage requirements of the on-chip Edge and Path
 * tables.
 *
 * Paper values: Edge table 3.6 KB (d=11) / 6 KB (d=13); Path table
 * 129 KB (d=11) / 345 KB (d=13). The path table is n x n cells at
 * 2 bits after the four-group quantization of §6.6; with
 * n = (d^2-1)/2 x (d+1) detectors this arithmetic reproduces the
 * paper's numbers exactly.
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

int
main(int argc, char **argv)
{
    Bench bench(argc, argv, "table8_storage",
                "Edge/Path table storage");
    bench.rejectSpecFilter(
        "the storage model has no decoder configuration");

    ReportTable table(
        "Table 8: storage requirements",
        {"d", "detectors", "edges", "Edge table", "paper",
         "Path table", "paper"});
    const struct
    {
        int d;
        const char *paper_edge;
        const char *paper_path;
    } rows[] = {
        {11, "3.6 KB", "129 KB"},
        {13, "6 KB", "345 KB"},
    };
    for (const auto &row : rows) {
        const auto &ctx = ExperimentContext::get(row.d, 1e-4);
        const StorageEstimate est = estimateStorage(ctx.graph());
        table.addRow(
            {std::to_string(row.d),
             std::to_string(ctx.graph().numDetectors()),
             std::to_string(ctx.graph().edges().size()),
             formatFixed(est.edgeTableBytes / 1024.0, 1) + " KB",
             row.paper_edge,
             formatFixed(est.pathTableBytes / 1024.0, 1) + " KB",
             row.paper_path});
    }
    bench.emit(table);
    std::printf(
        "\nShape check: the d=13/d=11 path-table ratio is "
        "(1176/720)^2 = 2.67, exactly\nthe paper's 345/129; "
        "absolute sizes match the 2-bit four-group encoding.\n");

    // Host-side PathTable storage, dense (S x S PathCell half) vs
    // DeferPairs (boundary column only; pair distances computed on
    // demand by the sparse matcher's DistanceOracle). The d >= 17
    // graphs are built with deferred tables so this bench itself
    // never pays the O(V^2) build it is quantifying.
    ReportTable host(
        "Host PathTable: dense pair cells vs DeferPairs "
        "(sparse-matcher mode)",
        {"d", "detectors", "dense pair cells", "deferred",
         "ratio"});
    for (int d : {11, 13, 17, 21}) {
        const ExperimentContext ctx(d, 1e-4, -1,
                                    /*deferPathTable=*/true);
        const double n =
            static_cast<double>(ctx.graph().numDetectors());
        const double dense_bytes = n * n * sizeof(PathCell);
        const double deferred_bytes = n * sizeof(PathCell);
        host.addRow(
            {std::to_string(d),
             std::to_string(ctx.graph().numDetectors()),
             formatFixed(dense_bytes / (1024.0 * 1024.0), 1) +
                 " MB",
             formatFixed(deferred_bytes / 1024.0, 1) + " KB",
             formatFixed(dense_bytes / deferred_bytes, 0) + "x"});
    }
    bench.emit(host);
    std::printf(
        "\nDeferPairs drops the pair half entirely (and its V "
        "per-source Dijkstras at\nsetup); the sparse matcher "
        "recomputes exactly the pairs a decode touches.\n");
    return bench.finish();
}
