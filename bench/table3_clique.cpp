/**
 * @file
 * Table 3: the Clique NSM predecoder cannot rescue a HW <= 10 main
 * decoder, and adds nothing in front of Astrea-G.
 *
 * Paper values at p = 1e-4:
 *   Clique + Astrea   d11 2.2e-5 (1e8x)   d13 > 1e-4 (> 1e9x)
 *   Clique + AG       d11 4.5e-13 (2.5x)  d13 1.4e-13 (43x)
 *   Astrea-G          d11 4.5e-13 (2.5x)  d13 1.4e-13 (43x)
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

int
main(int argc, char **argv)
{
    Bench bench(argc, argv, "table3_clique",
                "Clique predecoder LER, p = 1e-4");

    ReportTable table(
        "Table 3: Clique LER at p = 1e-4 (measured vs paper)",
        {"Decoder", "d=11", "paper d=11", "d=13", "paper d=13"});

    const auto &ctx11 = ExperimentContext::get(11, 1e-4);
    const auto &ctx13 = ExperimentContext::get(13, 1e-4);

    const struct
    {
        const char *config;
        const char *label;
        double paper11;
        double paper13;
    } rows[] = {
        {"clique_astrea", "Clique + Astrea", 2.2e-5, 1e-4},
        {"clique_ag", "Clique + AG", 4.5e-13, 1.4e-13},
        {"astrea_g", "Astrea-G (AG)", 4.5e-13, 1.4e-13},
    };

    double ler_ag11 = 0.0, ler_ag13 = 0.0;
    double ler_cag11 = 0.0, ler_cag13 = 0.0;
    for (const auto &row : rows) {
        if (!bench.specEnabled(row.config)) {
            continue;
        }
        const double l11 =
            bench.runLer(ctx11, row.config, 1200).ler;
        const double l13 =
            bench.runLer(ctx13, row.config, 1200).ler;
        if (std::string(row.config) == "astrea_g") {
            ler_ag11 = l11;
            ler_ag13 = l13;
        } else if (std::string(row.config) == "clique_ag") {
            ler_cag11 = l11;
            ler_cag13 = l13;
        }
        table.addRow({row.label, formatSci(l11),
                      formatSci(row.paper11), formatSci(l13),
                      formatSci(row.paper13)});
        std::printf("  done: %s\n", row.label);
    }
    bench.emit(table);

    // The paired comparison only means something when both configs
    // actually ran (--spec can filter either out).
    if (bench.specEnabled("astrea_g") &&
        bench.specEnabled("clique_ag")) {
        std::printf("\nShape checks:\n"
                    " - Clique+Astrea sits at the physical-error "
                    "scale (paper: ~1e-5 .. >1e-4):\n"
                    "   Clique forwards every complex high-HW "
                    "syndrome and Astrea aborts on it.\n"
                    " - Clique+AG tracks AG itself (measured %s vs "
                    "%s at d=11, %s vs %s at d=13):\n"
                    "   an NSM predecoder cannot improve its main "
                    "decoder.\n",
                    formatSci(ler_cag11).c_str(),
                    formatSci(ler_ag11).c_str(),
                    formatSci(ler_cag13).c_str(),
                    formatSci(ler_ag13).c_str());
    }
    return bench.finish();
}
