/**
 * @file
 * Figure 5: error-chain length distribution in MWPM solutions of
 * high-HW syndromes at d = 13, p = 1e-4.
 *
 * Paper shape: more than 90% of matched error chains have length 1
 * (defects matched to direct neighbors) — the observation Promatch's
 * locality-aware design is built on.
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

int
main(int argc, char **argv)
{
    Bench bench(argc, argv, "fig05_chain_lengths",
                "MWPM chain-length distribution, d = 13");

    const auto &ctx = ExperimentContext::get(13, 1e-4);
    auto mwpm = makeDecoder(bench.specOr("mwpm"), ctx.graph(),
                            ctx.paths());

    // Sample high-HW syndromes via k-fault injection through the
    // parallel LER engine and accumulate the chain-length histogram
    // of the exact solutions, weighted by occurrence probability.
    LerOptions options = bench.lerOptions(400);
    options.skipBelowK = 6; // k < 6 cannot produce HW > 10.
    options.seed = 0xf16'5;
    // Chain lengths ride on the trace since the workspace refactor
    // (the hot DecodeResult is plain data).
    options.collectTraces = true;
    // Only the high-HW population matters here; skip the decode
    // for the rest.
    options.decodeFilter =
        [](int, const std::vector<uint32_t> &defects) {
            return defects.size() > 10;
        };
    WeightedHistogram lengths;
    uint64_t high_hw_samples = 0;
    estimateLer(ctx, *mwpm, options,
                [&](const SampleView &view) {
                    ++high_hw_samples;
                    for (int len : view.trace->chainLengths) {
                        lengths.add(len, view.weight);
                    }
                });

    ReportTable table(
        "Figure 5: error-chain length frequency (high-HW, d=13)",
        {"chain length", "measured frequency", "paper"});
    const double total = lengths.totalWeight();
    for (int len = 1; len <= std::min(8, lengths.maxBin());
         ++len) {
        const double freq = lengths.probabilityAt(len, total);
        table.addRow({std::to_string(len), formatSci(freq),
                      len == 1 ? "> 0.9" : "(tail)"});
    }
    bench.emit(table);
    bench.note("length1_fraction",
               lengths.probabilityAt(1, total));
    std::printf("\n%llu high-HW syndromes decoded; length-1 "
                "fraction = %.3f (paper: > 0.9)\n",
                static_cast<unsigned long long>(high_hw_samples),
                lengths.probabilityAt(1, total));
    return bench.finish();
}
