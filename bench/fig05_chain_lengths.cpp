/**
 * @file
 * Figure 5: error-chain length distribution in MWPM solutions of
 * high-HW syndromes at d = 13, p = 1e-4.
 *
 * Paper shape: more than 90% of matched error chains have length 1
 * (defects matched to direct neighbors) — the observation Promatch's
 * locality-aware design is built on.
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

int
main()
{
    banner("Figure 5", "MWPM chain-length distribution, d = 13");

    const auto &ctx = ExperimentContext::get(13, 1e-4);
    auto mwpm = makeDecoder("mwpm", ctx.graph(), ctx.paths());

    // Sample high-HW syndromes via k-fault injection and accumulate
    // the chain-length histogram of the exact solutions, weighted by
    // occurrence probability.
    ImportanceSampler sampler(ctx.dem(), 24);
    Rng rng(0xf16'5);
    WeightedHistogram lengths;
    const uint64_t per_k = scaledSamples(400);
    uint64_t high_hw_samples = 0;
    for (int k = 6; k <= 24; ++k) {
        const double weight =
            sampler.occurrenceProb(k) / static_cast<double>(per_k);
        for (uint64_t s = 0; s < per_k; ++s) {
            const auto sample = sampler.sample(k, rng);
            if (sample.defects.size() <= 10) {
                continue;
            }
            ++high_hw_samples;
            const DecodeResult result =
                mwpm->decode(sample.defects);
            for (int len : result.chainLengths) {
                lengths.add(len, weight);
            }
        }
    }

    ReportTable table(
        "Figure 5: error-chain length frequency (high-HW, d=13)",
        {"chain length", "measured frequency", "paper"});
    const double total = lengths.totalWeight();
    for (int len = 1; len <= std::min(8, lengths.maxBin());
         ++len) {
        const double freq = lengths.probabilityAt(len, total);
        table.addRow({std::to_string(len), formatSci(freq),
                      len == 1 ? "> 0.9" : "(tail)"});
    }
    table.print();
    std::printf("\n%llu high-HW syndromes decoded; length-1 "
                "fraction = %.3f (paper: > 0.9)\n",
                static_cast<unsigned long long>(high_hw_samples),
                lengths.probabilityAt(1, total));
    return 0;
}
