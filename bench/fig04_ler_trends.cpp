/**
 * @file
 * Figure 4: LER trends vs code distance for MWPM, Astrea-G,
 * Clique+MWPM, and an AFS-class union-find decoder at p = 1e-4.
 *
 * Paper shape: MWPM and Clique+MWPM keep dropping with distance;
 * Astrea-G tracks MWPM up to d = 9 but diverges beyond (2.5x at
 * d = 11, 43x at d = 13); AFS/union-find sits above MWPM at this
 * near-term error rate.
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

int
main(int argc, char **argv)
{
    Bench bench(argc, argv, "fig04_ler_trends",
                "LER vs distance, p = 1e-4");

    ReportTable table(
        "Figure 4: LER and P(fail | HW>10) vs distance, p = 1e-4",
        {"d", "MWPM", "Astrea-G", "Clique+MWPM", "UnionFind(AFS)",
         "AG P(f|HW>10)", "UF P(f|HW>10)"});

    const auto measure = [&](const ExperimentContext &ctx,
                             const char *config,
                             HwConditionalStats *stats) {
        if (!bench.specEnabled(config)) {
            return std::string("-");
        }
        const SampleObserver observer =
            stats ? SampleObserver([&](const SampleView &view) {
                stats->record(
                    static_cast<int>(view.defects.size()),
                    view.weight, view.failed);
            })
                  : SampleObserver();
        const LerEstimate est =
            bench.runLer(ctx, config, 1000, observer);
        return formatSci(est.ler);
    };

    for (int d : {9, 11, 13}) {
        const auto &ctx = ExperimentContext::get(d, 1e-4);
        HwConditionalStats ag_stats, uf_stats;
        const std::string mwpm = measure(ctx, "mwpm", nullptr);
        const std::string ag =
            measure(ctx, "astrea_g", &ag_stats);
        const std::string clique =
            measure(ctx, "clique_mwpm", nullptr);
        const std::string uf =
            measure(ctx, "union_find", &uf_stats);
        // Derived columns of filtered-out configs print "-" like
        // their LER columns (an empty stats object would otherwise
        // read as a measured zero failure rate).
        const auto cond = [&](const HwConditionalStats &stats,
                              const char *config) {
            return bench.specEnabled(config)
                       ? formatSci(
                             stats.conditionalFailRate(11, 64))
                       : std::string("-");
        };
        table.addRow({std::to_string(d), mwpm, ag, clique, uf,
                      cond(ag_stats, "astrea_g"),
                      cond(uf_stats, "union_find")});
        std::printf("  done: d=%d\n", d);
    }
    bench.emit(table);
    std::printf(
        "\nShape checks: Astrea-G matches MWPM at d=9 and falls "
        "behind at d=11/13\n(the paper's 2.5x and 43x gaps); "
        "union-find trails MWPM; Clique+MWPM tracks\nMWPM because "
        "its main decoder is exact software MWPM.\n");
    return bench.finish();
}
