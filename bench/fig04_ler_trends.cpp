/**
 * @file
 * Figure 4: LER trends vs code distance for MWPM, Astrea-G,
 * Clique+MWPM, and an AFS-class union-find decoder at p = 1e-4.
 *
 * Paper shape: MWPM and Clique+MWPM keep dropping with distance;
 * Astrea-G tracks MWPM up to d = 9 but diverges beyond (2.5x at
 * d = 11, 43x at d = 13); AFS/union-find sits above MWPM at this
 * near-term error rate.
 */

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

int
main()
{
    banner("Figure 4", "LER vs distance, p = 1e-4");

    ReportTable table(
        "Figure 4: LER and P(fail | HW>10) vs distance, p = 1e-4",
        {"d", "MWPM", "Astrea-G", "Clique+MWPM", "UnionFind(AFS)",
         "AG P(f|HW>10)", "UF P(f|HW>10)"});

    for (int d : {9, 11, 13}) {
        const auto &ctx = ExperimentContext::get(d, 1e-4);
        HwConditionalStats ag_stats, uf_stats;
        const double mwpm = runLer(ctx, "mwpm", 1000).ler;
        const double ag =
            runLer(ctx, "astrea_g", 1000,
                   [&](const SampleView &view) {
                       ag_stats.record(
                           static_cast<int>(view.defects.size()),
                           view.weight, view.failed);
                   })
                .ler;
        const double clique = runLer(ctx, "clique_mwpm", 1000).ler;
        const double uf =
            runLer(ctx, "union_find", 1000,
                   [&](const SampleView &view) {
                       uf_stats.record(
                           static_cast<int>(view.defects.size()),
                           view.weight, view.failed);
                   })
                .ler;
        table.addRow({std::to_string(d), formatSci(mwpm),
                      formatSci(ag), formatSci(clique),
                      formatSci(uf),
                      formatSci(
                          ag_stats.conditionalFailRate(11, 64)),
                      formatSci(
                          uf_stats.conditionalFailRate(11, 64))});
        std::printf("  done: d=%d\n", d);
    }
    table.print();
    std::printf(
        "\nShape checks: Astrea-G matches MWPM at d=9 and falls "
        "behind at d=11/13\n(the paper's 2.5x and 43x gaps); "
        "union-find trails MWPM; Clique+MWPM tracks\nMWPM because "
        "its main decoder is exact software MWPM.\n");
    return 0;
}
