/**
 * @file
 * Throughput scaling of the parallel LER evaluation engine: wall
 * time and samples/s of estimateLer for a thread sweep on one
 * decoder configuration, verifying along the way that every thread
 * count reproduces the single-threaded estimate bit-for-bit.
 *
 * With --repeat N each thread count is measured N times and the
 * median wall time is reported, so committed BENCH_*.json numbers
 * are noise-robust. A serial per-stage breakdown (sample /
 * predecode / match) follows the sweep: the spec is decomposed into
 * its predecoder and main decoder and every phase is timed
 * individually, mirroring the pipeline's dispatch (low-HW syndromes
 * skip the predecoder).
 *
 * This is the harness-side counterpart of the paper's evaluation
 * loop: all of Table 2 / Figs. 4, 14-17 ride on this engine, so its
 * scaling is the wall-clock cost of every reproduction number.
 */

#include <algorithm>
#include <chrono>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/**
 * Serial per-stage wall-time breakdown over the same syndrome
 * stream the sweep decodes. Only simple `pre+main` stacks are
 * decomposed; specs with a parallel partner (or no predecoder) fall
 * back to a two-stage sample/decode split. Per-stage timer reads
 * add ~1% overhead, so the headline samples/s above stays the
 * untimed sweep's number.
 */
void
printStageBreakdown(Bench &bench, const ExperimentContext &ctx,
                    const std::string &config,
                    const LerOptions &options,
                    const std::string &note_prefix = "")
{
    const DecoderSpec spec =
        DecoderSpec::parse(specForName(config));
    LatencyConfig latency;
    PromatchConfig promatch;
    PinballConfig pinball;
    applySpecOptions(spec.options, latency, promatch, pinball);

    std::unique_ptr<Predecoder> pre;
    if (!spec.partner && !spec.primary.predecoder.empty()) {
        const BuildContext context{ctx.graph(), ctx.paths(),
                                   latency, promatch, pinball};
        pre = DecoderRegistry::instance().buildPredecoder(
            spec.primary.predecoder, context);
    }
    DecoderSpec main_spec = spec;
    main_spec.primary.predecoder.clear();
    auto main_decoder =
        build(main_spec, ctx.graph(), ctx.paths());

    ImportanceSampler sampler(ctx.dem(), options.kMax);
    DecodeWorkspace workspace;
    ImportanceSampler::Sample sample;
    const long long budget_cycles = static_cast<long long>(
        latency.effectiveBudgetNs() / latency.nsPerCycle);

    double sample_s = 0.0, pre_s = 0.0, match_s = 0.0;
    uint64_t decoded = 0, predecoded = 0, matched = 0;
    // Mirror the engine's k range (k starts at 1 even when
    // skipBelowK is 0; the sampler asserts k >= 1).
    for (int k = std::max(1, options.skipBelowK);
         k <= options.kMax; ++k) {
        for (uint64_t i = 0;
             i < static_cast<uint64_t>(options.samplesPerK);
             ++i) {
            Rng rng = Rng::forSample(
                options.seed, static_cast<uint64_t>(k), i);
            const auto t0 = Clock::now();
            sampler.sample(k, rng, sample);
            sample_s += secondsSince(t0);
            ++decoded;

            // Mirror the pipeline's dispatch: low-HW syndromes go
            // straight to the main decoder.
            std::span<const uint32_t> handoff = sample.defects;
            if (pre && static_cast<int>(sample.defects.size()) >
                           latency.astreaMaxHw) {
                const auto t1 = Clock::now();
                pre->predecode(sample.defects, budget_cycles,
                               workspace,
                               workspace.predecodeResult);
                pre_s += secondsSince(t1);
                ++predecoded;
                if (workspace.predecodeResult.decodedAll) {
                    continue;
                }
                handoff = workspace.predecodeResult.residual;
            }
            const auto t2 = Clock::now();
            main_decoder->decode(handoff, workspace);
            match_s += secondsSince(t2);
            ++matched;
        }
    }

    const double total_s = sample_s + pre_s + match_s;
    // Each row's per-call column divides by that stage's own call
    // count (predecode only engages on high-HW syndromes; match is
    // skipped when an NSM predecoder resolves everything), so the
    // units are consistent across rows.
    ReportTable table(
        "Per-stage serial breakdown, " + config +
            (pre ? "" : " (no predecoder stage)"),
        {"stage", "wall s", "share", "calls", "ns/call"});
    const auto row = [&](const char *stage, double seconds,
                         uint64_t calls) {
        table.addRow(
            {stage, formatFixed(seconds, 3),
             formatFixed(100.0 * seconds / total_s, 1) + "%",
             std::to_string(calls),
             formatFixed(calls ? seconds * 1e9 /
                                     static_cast<double>(calls)
                               : 0.0,
                         0)});
    };
    row("sample", sample_s, decoded);
    row("predecode", pre_s, predecoded);
    row("match", match_s, matched);
    bench.emit(table);
    bench.note(note_prefix + "stage_sample_share",
               sample_s / total_s);
    bench.note(note_prefix + "stage_predecode_share",
               pre_s / total_s);
    bench.note(note_prefix + "stage_match_share",
               match_s / total_s);
    bench.note(note_prefix + "stage_predecode_ns_per_call",
               predecoded
                   ? pre_s * 1e9 / static_cast<double>(predecoded)
                   : 0.0);
    bench.note(note_prefix + "stage_match_ns_per_call",
               matched
                   ? match_s * 1e9 / static_cast<double>(matched)
                   : 0.0);
}

/**
 * Serial decode() loop vs the 64-lane decodeBlock() path on the
 * identical syndrome stream: the lane-parallel path scatters,
 * predecodes all lanes through one word-kernel call, compacts the
 * resolved lanes away, and shares one union distance gather — the
 * measured ratio is the whole-block speedup the LER engine's block
 * path banks per 64 samples. Packing the bit-planes is timed inside
 * the batch pass (the engine pays it too). Results are
 * bit-identical by the BlockDecode suite's contract, re-checked
 * here on the fly.
 */
void
printBatchBreakdown(Bench &bench, const ExperimentContext &ctx,
                    const std::string &config,
                    const LerOptions &options,
                    const std::string &note_prefix = "")
{
    auto decoder = makeDecoder(config, ctx.graph(), ctx.paths());
    ImportanceSampler sampler(ctx.dem(), options.kMax);

    // One fixed syndrome stream, same counter-based draws as the
    // sweep's k range.
    std::vector<std::vector<uint32_t>> syndromes;
    for (int k = std::max(1, options.skipBelowK);
         k <= options.kMax; ++k) {
        for (uint64_t i = 0;
             i < static_cast<uint64_t>(options.samplesPerK); ++i) {
            Rng rng = Rng::forSample(
                options.seed, static_cast<uint64_t>(k), i);
            syndromes.push_back(sampler.sample(k, rng).defects);
        }
    }

    DecodeWorkspace workspace;
    std::vector<DecodeResult> serial(syndromes.size());
    const auto t_serial = Clock::now();
    for (size_t i = 0; i < syndromes.size(); ++i) {
        serial[i] = decoder->decode(syndromes[i], workspace);
    }
    const double serial_s = secondsSince(t_serial);

    std::vector<uint64_t> words(ctx.graph().numDetectors(), 0);
    std::vector<DecodeResult> batch(syndromes.size());
    const auto t_batch = Clock::now();
    for (size_t base = 0; base < syndromes.size(); base += 64) {
        const int lanes = static_cast<int>(
            std::min<size_t>(64, syndromes.size() - base));
        for (int l = 0; l < lanes; ++l) {
            for (uint32_t det : syndromes[base + l]) {
                words[det] |= uint64_t{1} << l;
            }
        }
        decoder->decodeBlock(words, lanes, workspace,
                             &batch[base]);
        for (int l = 0; l < lanes; ++l) {
            for (uint32_t det : syndromes[base + l]) {
                words[det] = 0;
            }
        }
    }
    const double batch_s = secondsSince(t_batch);

    uint64_t mismatches = 0;
    for (size_t i = 0; i < syndromes.size(); ++i) {
        if (batch[i].predictedObs != serial[i].predictedObs ||
            batch[i].weight != serial[i].weight ||
            batch[i].aborted != serial[i].aborted) {
            ++mismatches;
        }
    }

    const double n = static_cast<double>(syndromes.size());
    ReportTable table("Serial decode() vs 64-lane decodeBlock(), " +
                          config + " (identical stream)",
                      {"path", "wall s", "samples/s", "speedup",
                       "bit-identical"});
    table.addRow({"serial", formatFixed(serial_s, 3),
                  formatFixed(n / serial_s, 0), "(ref)", "(ref)"});
    table.addRow({"batch64", formatFixed(batch_s, 3),
                  formatFixed(n / batch_s, 0),
                  formatRatio(serial_s, batch_s),
                  mismatches == 0 ? "yes" : "NO"});
    bench.emit(table);
    bench.note(note_prefix + "batch_samples_per_s", n / batch_s);
    bench.note(note_prefix + "batch_speedup_vs_serial",
               serial_s / batch_s);
    if (mismatches != 0) {
        std::fprintf(stderr,
                     "batch/serial divergence on %llu samples\n",
                     static_cast<unsigned long long>(mismatches));
        std::exit(1);
    }
}

/** Process peak RSS in MB (0 when the platform has no getrusage). */
double
peakRssMb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
        // ru_maxrss is KB on Linux, bytes on macOS.
#if defined(__APPLE__)
        return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
        return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
    }
#endif
    return 0.0;
}

/**
 * High-distance axis: the dense `mwpm` main decoder (S x S PathTable
 * rows) vs the `sparse` local-growth matcher running on a DeferPairs
 * table, on identical importance-sampled syndrome streams at
 * d in {11, 13, 17}, followed by an end-to-end d = 21
 * promatch_sparse LER run on a deferred table — the configuration
 * the dense matcher cannot reach without a 187 MB O(V^2) build.
 *
 * Sample counts here are fixed internally and deliberately ignore
 * --samples-per-k: the point of this section is per-call match cost
 * and the storage column, not LER error bars, and CI's large per-k
 * override would turn the d = 17 dense-table build plus stream into
 * minutes.
 */
void
printSparseHighDistance(Bench &bench, int threads)
{
    const uint64_t per_k =
        std::min<uint64_t>(scaledSamples(60), 120);
    const int k_lo = 3, k_hi = 10;

    ReportTable table(
        "Match stage, dense mwpm (S x S table rows) vs sparse "
        "local growth (DeferPairs + on-demand Dijkstra)",
        {"d", "matcher", "pair table", "wall s", "ns/call",
         "samples/s", "speedup"});
    for (int d : {11, 13, 17}) {
        // Built locally, not via the process-wide cache: the d = 17
        // dense table (54 MB) should not outlive this comparison.
        const ExperimentContext ctx(d, 1e-4, -1, false);
        const PathTable deferred(ctx.graph(),
                                 PathTable::DeferPairs{});
        ImportanceSampler sampler(ctx.dem(), k_hi);
        std::vector<std::vector<uint32_t>> stream;
        for (int k = k_lo; k <= k_hi; ++k) {
            for (uint64_t i = 0; i < per_k; ++i) {
                Rng rng = Rng::forSample(
                    0xd157, static_cast<uint64_t>(k), i);
                stream.push_back(sampler.sample(k, rng).defects);
            }
        }

        auto dense_dec =
            makeDecoder("mwpm", ctx.graph(), ctx.paths());
        auto sparse_dec =
            makeDecoder("sparse", ctx.graph(), deferred);
        const auto time_stream = [&](Decoder &decoder) {
            DecodeWorkspace ws;
            for (const auto &s : stream) { // Warm the workspace.
                decoder.decode(s, ws);
            }
            const auto t0 = Clock::now();
            for (const auto &s : stream) {
                decoder.decode(s, ws);
            }
            return secondsSince(t0);
        };
        const double n = static_cast<double>(stream.size());
        const double dense_s = time_stream(*dense_dec);
        const double sparse_s = time_stream(*sparse_dec);

        const uint32_t dets = ctx.graph().numDetectors();
        const double dense_mb =
            static_cast<double>(dets) * dets * sizeof(PathCell) /
            (1024.0 * 1024.0);
        const double deferred_kb =
            static_cast<double>(dets) * sizeof(PathCell) / 1024.0;
        const auto row = [&](const char *matcher,
                             const std::string &storage,
                             double seconds) {
            table.addRow(
                {std::to_string(d), matcher, storage,
                 formatFixed(seconds, 3),
                 formatFixed(seconds * 1e9 / n, 0),
                 formatFixed(n / seconds, 0),
                 seconds == dense_s
                     ? "(ref)"
                     : formatRatio(dense_s, seconds)});
        };
        row("mwpm (dense)", formatFixed(dense_mb, 1) + " MB",
            dense_s);
        row("sparse (deferred)",
            formatFixed(deferred_kb, 1) + " KB", sparse_s);
        const std::string suffix = "_d" + std::to_string(d);
        bench.note("dense_match_samples_per_s" + suffix,
                   n / dense_s);
        bench.note("sparse_match_samples_per_s" + suffix,
                   n / sparse_s);
        std::printf("  done: d=%d dense vs sparse match stage\n",
                    d);
    }
    bench.emit(table);

    // d = 21 end to end: deferred table only — no S x S cells are
    // ever allocated in this context (the DeferPairs assert in
    // PathTable::index() enforces it; a dense read would abort).
    const ExperimentContext d21(21, 1e-4, -1, true);
    auto decoder =
        makeDecoder("promatch_sparse", d21.graph(), d21.paths());
    LerOptions options;
    options.kMax = 12;
    options.samplesPerK = std::min<uint64_t>(scaledSamples(30), 60);
    options.skipBelowK = 3;
    options.threads = threads;
    const auto t0 = Clock::now();
    const LerEstimate est = estimateLer(d21, *decoder, options);
    const double wall = secondsSince(t0);
    uint64_t decoded = 0;
    for (const auto &k : est.perK) {
        decoded += k.samples;
    }

    const uint32_t dets = d21.graph().numDetectors();
    const double avoided_mb =
        static_cast<double>(dets) * dets * sizeof(PathCell) /
        (1024.0 * 1024.0);
    const double deferred_kb =
        static_cast<double>(dets) * sizeof(PathCell) / 1024.0;
    ReportTable t21(
        "d = 21 end-to-end, promatch_sparse on a DeferPairs table",
        {"detectors", "pair table", "dense would be", "samples",
         "wall s", "samples/s", "LER"});
    t21.addRow({std::to_string(dets),
                formatFixed(deferred_kb, 1) + " KB (boundary)",
                formatFixed(avoided_mb, 1) + " MB",
                std::to_string(decoded), formatFixed(wall, 2),
                formatFixed(static_cast<double>(decoded) / wall, 0),
                formatSci(est.ler)});
    bench.emit(t21);
    bench.note("d21_sparse_samples_per_s",
               static_cast<double>(decoded) / wall);
    bench.note("d21_sparse_ler", est.ler);
    bench.note("d21_deferred_table_kb", deferred_kb);
    bench.note("d21_dense_table_mb_avoided", avoided_mb);
    bench.note("peak_rss_mb", peakRssMb());
    std::printf(
        "  done: d=21 promatch_sparse (peak RSS %.0f MB; includes "
        "the d=17 dense\n  comparison table built above, which a "
        "sparse-only run never allocates)\n",
        peakRssMb());
}

/**
 * Accuracy/coverage comparison of every local predecoder piped into
 * the same Astrea main decoder, on the identical d = 11 syndrome
 * stream (counter-based Rng::forSample): committed LER, the share
 * of syndromes where the predecoder engaged (HW > threshold), the
 * HW coverage over that engaged population (1 - residual HW / input
 * HW, weighted), and the share it resolved entirely locally (NSM
 * all-or-nothing hits; SM predecoders hand a residual over).
 */
void
printPredecoderComparison(Bench &bench,
                          const ExperimentContext &ctx,
                          LerOptions options)
{
    options.collectTraces = true;
    ReportTable table(
        "Predecoder accuracy/coverage, d = 11, p = 1e-4 "
        "(pinball_mwpm: MWPM cleanup reference)",
        {"stack", "LER", "engaged", "coverage",
         "local-resolve"});
    for (const char *config :
         {"promatch_astrea", "clique_astrea", "smith_astrea",
          "pinball_astrea", "pinball_mwpm"}) {
        if (!bench.specEnabled(config)) {
            continue;
        }
        auto decoder =
            makeDecoder(config, ctx.graph(), ctx.paths());
        double weight_total = 0.0, weight_engaged = 0.0;
        double hw_before = 0.0, hw_after = 0.0;
        double weight_local = 0.0;
        const LerEstimate est = estimateLer(
            ctx, *decoder, options,
            [&](const SampleView &view) {
                weight_total += view.weight;
                if (!view.trace->predecoderEngaged) {
                    return;
                }
                weight_engaged += view.weight;
                hw_before += view.weight * view.trace->hwBefore;
                hw_after += view.weight * view.trace->hwAfter;
                if (view.trace->hwAfter == 0) {
                    weight_local += view.weight;
                }
            });
        table.addRow(
            {config, formatSci(est.ler),
             formatFixed(weight_total
                             ? 100.0 * weight_engaged / weight_total
                             : 0.0,
                         2) +
                 "%",
             formatFixed(hw_before
                             ? 100.0 * (1.0 - hw_after / hw_before)
                             : 0.0,
                         1) +
                 "%",
             formatFixed(weight_engaged
                             ? 100.0 * weight_local / weight_engaged
                             : 0.0,
                         1) +
                 "%"});
        std::printf("  done: %s (comparison)\n", config);
    }
    bench.emit(table);
}

} // namespace

int
main(int argc, char **argv)
{
    Bench bench(argc, argv, "ler_throughput",
                "parallel LER engine scaling, d = 11");

    const auto &ctx = ExperimentContext::get(11, 1e-4);
    const std::string config =
        bench.specOr("promatch_astrea");
    auto decoder =
        makeDecoder(config, ctx.graph(), ctx.paths());

    LerOptions options = bench.lerOptions(600);
    const int max_threads = options.resolvedThreads();
    const int repeat = bench.cli().repeat;

    ReportTable table("LER engine scaling, " + config +
                          ", d = 11, p = 1e-4",
                      {"threads", "wall s", "samples/s",
                       "speedup", "LER", "bit-identical"});

    // Powers of two up to the requested maximum, plus the maximum
    // itself when it is not one (6- or 12-core machines).
    std::vector<int> sweep;
    for (int t = 1; t < max_threads; t *= 2) {
        sweep.push_back(t);
    }
    sweep.push_back(max_threads);

    double serial_seconds = 0.0;
    uint64_t reference_decoded = 0;
    double best_samples_per_s = 0.0;
    LerEstimate reference;
    bool all_identical = true;
    for (int threads : sweep) {
        options.threads = threads;
        // --repeat: median wall time over identical runs (the
        // estimates themselves are bit-identical by construction,
        // which the check below still verifies per run).
        std::vector<double> walls;
        LerEstimate est;
        for (int r = 0; r < repeat; ++r) {
            const auto start = Clock::now();
            est = estimateLer(ctx, *decoder, options);
            walls.push_back(secondsSince(start));
        }
        const double seconds = medianOf(walls);

        uint64_t decoded = 0;
        bool identical = true;
        for (size_t k = 0; k < est.perK.size(); ++k) {
            decoded += est.perK[k].samples;
            if (threads > 1 &&
                (est.perK[k].failures !=
                     reference.perK[k].failures ||
                 est.perK[k].samples !=
                     reference.perK[k].samples)) {
                identical = false;
            }
        }
        if (threads == 1) {
            serial_seconds = seconds;
            reference_decoded = decoded;
            reference = est;
        } else if (est.ler != reference.ler) {
            identical = false;
        }
        best_samples_per_s =
            std::max(best_samples_per_s,
                     static_cast<double>(decoded) / seconds);

        table.addRow(
            {std::to_string(threads), formatFixed(seconds, 2),
             formatFixed(static_cast<double>(decoded) / seconds,
                         0),
             formatRatio(serial_seconds, seconds),
             formatSci(est.ler),
             threads == 1 ? "(ref)"
                          : (identical ? "yes" : "NO")});
        std::printf("  done: threads=%d (%.2f s median of %d)\n",
                    threads, seconds, repeat);
        if (threads > 1 && !identical) {
            // Keep sweeping so the emitted table shows every
            // diverging row, then fail the run.
            std::fprintf(stderr,
                         "determinism violation at threads=%d\n",
                         threads);
            all_identical = false;
        }
    }
    bench.emit(table);
    printStageBreakdown(bench, ctx, config, options);
    printBatchBreakdown(bench, ctx, config, options);
    // The Pinball onboarding rides the same report: its own
    // per-stage breakdown and the cross-predecoder
    // accuracy/coverage table (a --spec filter narrows the run to
    // that configuration only, so the extra breakdown is skipped).
    if (bench.cli().spec.empty()) {
        printStageBreakdown(bench, ctx, "pinball_astrea", options,
                            "pinball_");
        // Pinball is the stack where the lane-parallel word kernel
        // engages (Promatch's predecoder falls back to the serial
        // per-lane loop), so its batch ratio is the one that tracks
        // the bit-parallel predecode win.
        printBatchBreakdown(bench, ctx, "pinball_astrea", options,
                            "pinball_");
        // Sparse-matcher stack at the same d = 11 operating point:
        // its stage_match_share is the headline the sparse matching
        // core is accountable for (compared against the dense
        // stack's stage_match_share by CI's bench-smoke guard).
        printStageBreakdown(bench, ctx, "promatch_sparse", options,
                            "sparse_");
        // The exact dense matcher behind the same predecoder is the
        // apples-to-apples baseline the sparse core replaces (the
        // default stack's Astrea stage is an approximate hardware
        // model, so its share is not comparable): the
        // dense_exact_/sparse_ note pairs record the match-stage
        // samples/s improvement in the committed JSON.
        printStageBreakdown(bench, ctx, "promatch+mwpm", options,
                            "dense_exact_");
        printSparseHighDistance(bench, options.threads);
    }
    printPredecoderComparison(bench, ctx, options);
    // Scalar metrics for the BENCH_ler_throughput.json trajectory
    // (compared across PRs; see docs/benchmarks.md).
    bench.note("serial_samples_per_s",
               static_cast<double>(reference_decoded) /
                   serial_seconds);
    bench.note("best_samples_per_s", best_samples_per_s);
    const unsigned hw_threads =
        std::thread::hardware_concurrency();
    bench.note("hardware_threads",
               static_cast<double>(hw_threads));
    if (hw_threads <= 1) {
        // Flat multi-thread rows are expected here: with one CPU
        // the sweep measures pure engine overhead, not parallelism
        // (the reference container pins the bench to one core).
        bench.note("scaling_note",
                   "single-CPU host: thread sweep cannot exceed "
                   "1.0x; rows measure engine overhead only");
    }
    std::printf(
        "\nEvery row decodes the identical syndrome set "
        "(counter-based Rng::forSample\nstreams), so 'speedup' is "
        "pure engine scaling with zero statistical cost.\n");
    const int exit_code = bench.finish();
    return all_identical ? exit_code : 1;
}
