/**
 * @file
 * Throughput scaling of the parallel LER evaluation engine: wall
 * time and samples/s of estimateLer for a thread sweep on one
 * decoder configuration, verifying along the way that every thread
 * count reproduces the single-threaded estimate bit-for-bit.
 *
 * This is the harness-side counterpart of the paper's evaluation
 * loop: all of Table 2 / Figs. 4, 14-17 ride on this engine, so its
 * scaling is the wall-clock cost of every reproduction number.
 */

#include <algorithm>
#include <chrono>

#include "bench_common.hpp"

using namespace qec;
using namespace qecbench;

int
main(int argc, char **argv)
{
    Bench bench(argc, argv, "ler_throughput",
                "parallel LER engine scaling, d = 11");

    const auto &ctx = ExperimentContext::get(11, 1e-4);
    const std::string config =
        bench.specOr("promatch_astrea");
    auto decoder =
        makeDecoder(config, ctx.graph(), ctx.paths());

    LerOptions options = bench.lerOptions(600);
    const int max_threads = options.resolvedThreads();

    ReportTable table("LER engine scaling, " + config +
                          ", d = 11, p = 1e-4",
                      {"threads", "wall s", "samples/s",
                       "speedup", "LER", "bit-identical"});

    // Powers of two up to the requested maximum, plus the maximum
    // itself when it is not one (6- or 12-core machines).
    std::vector<int> sweep;
    for (int t = 1; t < max_threads; t *= 2) {
        sweep.push_back(t);
    }
    sweep.push_back(max_threads);

    double serial_seconds = 0.0;
    uint64_t reference_decoded = 0;
    double best_samples_per_s = 0.0;
    LerEstimate reference;
    bool all_identical = true;
    for (int threads : sweep) {
        options.threads = threads;
        const auto start = std::chrono::steady_clock::now();
        const LerEstimate est =
            estimateLer(ctx, *decoder, options);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();

        uint64_t decoded = 0;
        bool identical = true;
        for (size_t k = 0; k < est.perK.size(); ++k) {
            decoded += est.perK[k].samples;
            if (threads > 1 &&
                (est.perK[k].failures !=
                     reference.perK[k].failures ||
                 est.perK[k].samples !=
                     reference.perK[k].samples)) {
                identical = false;
            }
        }
        if (threads == 1) {
            serial_seconds = seconds;
            reference_decoded = decoded;
            reference = est;
        } else if (est.ler != reference.ler) {
            identical = false;
        }
        best_samples_per_s =
            std::max(best_samples_per_s,
                     static_cast<double>(decoded) / seconds);

        table.addRow(
            {std::to_string(threads), formatFixed(seconds, 2),
             formatFixed(static_cast<double>(decoded) / seconds,
                         0),
             formatRatio(serial_seconds, seconds),
             formatSci(est.ler),
             threads == 1 ? "(ref)"
                          : (identical ? "yes" : "NO")});
        std::printf("  done: threads=%d (%.2f s)\n", threads,
                    seconds);
        if (threads > 1 && !identical) {
            // Keep sweeping so the emitted table shows every
            // diverging row, then fail the run.
            std::fprintf(stderr,
                         "determinism violation at threads=%d\n",
                         threads);
            all_identical = false;
        }
    }
    bench.emit(table);
    // Scalar metrics for the BENCH_ler_throughput.json trajectory
    // (compared across PRs; see docs/benchmarks.md).
    bench.note("serial_samples_per_s",
               static_cast<double>(reference_decoded) /
                   serial_seconds);
    bench.note("best_samples_per_s", best_samples_per_s);
    std::printf(
        "\nEvery row decodes the identical syndrome set "
        "(counter-based Rng::forSample\nstreams), so 'speedup' is "
        "pure engine scaling with zero statistical cost.\n");
    const int exit_code = bench.finish();
    return all_identical ? exit_code : 1;
}
