/**
 * @file
 * Figure 15: LER of the six decoder configurations for
 * 1e-4 <= p <= 5e-4 at d = 13. Paper shape: Promatch||AG remains
 * within 13.9x of MWPM's LER across the sweep.
 */

#include "fig_sweep_common.hpp"

int
main(int argc, char **argv)
{
    qecbench::Bench bench(argc, argv, "fig15_sweep_d13",
                          "LER vs p sweep, d = 13");
    return qecbench::runSweep(bench, 13, 13.9);
}
