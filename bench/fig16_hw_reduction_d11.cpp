/**
 * @file
 * Figure 16: syndrome HW distribution before/after predecoding at
 * d = 11, p = 1e-4 (Promatch vs Smith et al.).
 */

#include "fig_hw_reduction_common.hpp"

int
main(int argc, char **argv)
{
    qecbench::Bench bench(argc, argv, "fig16_hw_reduction_d11",
                          "HW reduction by predecoding, d = 11");
    return qecbench::runHwReduction(bench, 11);
}
