/**
 * @file
 * Figure 16: syndrome HW distribution before/after predecoding at
 * d = 11, p = 1e-4 (Promatch vs Smith et al.).
 */

#include "fig_hw_reduction_common.hpp"

int
main()
{
    qecbench::banner("Figure 16",
                     "HW reduction by predecoding, d = 11");
    qecbench::runHwReduction(11);
    return 0;
}
