/**
 * @file
 * Circuit inspector: prints the generated memory-experiment circuit
 * in the library's text format, together with lattice and detector-
 * error-model summaries. Useful for eyeballing what the generator
 * produces and for exporting circuits to other tools.
 *
 * Run:  ./example_circuit_inspector [distance] [rounds] [p]
 */

#include <cstdio>
#include <cstdlib>

#include "qec/qec.hpp"

int
main(int argc, char **argv)
{
    const int distance = argc > 1 ? std::atoi(argv[1]) : 3;
    const int rounds = argc > 2 ? std::atoi(argv[2]) : distance;
    const double p = argc > 3 ? std::atof(argv[3]) : 1e-3;

    qec::SurfaceCodeLayout layout(distance);
    std::printf("# Rotated surface code, d = %d\n", distance);
    std::printf("# logical Z support:");
    for (uint32_t q : layout.logicalZSupport()) {
        std::printf(" %u", q);
    }
    std::printf("\n# logical X support:");
    for (uint32_t q : layout.logicalXSupport()) {
        std::printf(" %u", q);
    }
    std::printf("\n# stabilizers:\n");
    for (const qec::Stabilizer &stab : layout.stabilizers()) {
        std::printf("#   %c(%+d,%+d) anc=%u data={",
                    stab.type == qec::StabType::Z ? 'Z' : 'X',
                    stab.row, stab.col, stab.ancilla);
        for (size_t i = 0; i < stab.support.size(); ++i) {
            std::printf("%s%u", i ? "," : "", stab.support[i]);
        }
        std::printf("}\n");
    }

    const qec::MemoryExperiment exp = qec::generateMemoryZ(
        layout, rounds, qec::NoiseParams::uniform(p));
    const qec::DetectorErrorModel dem =
        qec::buildDetectorErrorModel(exp.circuit);
    std::printf("# circuit: %zu instructions, %u measurements, "
                "%u detectors\n"
                "# DEM: %zu mechanisms, expected faults/shot "
                "%.3f\n\n",
                exp.circuit.size(),
                exp.circuit.numMeasurements(),
                exp.circuit.numDetectors(),
                dem.mechanisms().size(), dem.expectedMechanisms());

    // The circuit itself, round-trippable through circuitFromText.
    std::fputs(qec::circuitToText(exp.circuit).c_str(), stdout);
    return 0;
}
