/**
 * @file
 * Threshold explorer: sweeps the physical error rate across the
 * surface code threshold (~1%) for several distances and decodes
 * with exact MWPM via direct Monte Carlo. Below threshold larger
 * codes win; above it they lose — the crossing point is the
 * threshold (§2.1 of the paper).
 *
 * Run:  ./example_threshold_explorer [shots] [threads]
 *
 * The direct Monte-Carlo estimator shards 64-lane blocks across
 * worker threads on counter-based RNG streams, so any thread count
 * (default: all hardware threads) gives bit-identical rates.
 */

#include <cstdio>
#include <cstdlib>

#include "qec/qec.hpp"

int
main(int argc, char **argv)
{
    const uint64_t shots = argc > 1 ? std::atoll(argv[1]) : 20000;
    const int threads = argc > 2 ? std::atoi(argv[2]) : 0;

    qec::ReportTable table(
        "Logical error rate vs physical error rate (MWPM, direct "
        "MC, " + std::to_string(shots) + " shots)",
        {"p", "d=3", "d=5", "d=7"});

    for (double p : {2e-3, 5e-3, 1e-2, 2e-2}) {
        std::vector<std::string> row = {qec::formatSci(p)};
        for (int d : {3, 5, 7}) {
            const qec::ExperimentContext ctx(d, p);
            qec::MwpmDecoder decoder(ctx.graph(), ctx.paths());
            const qec::DirectMcResult result =
                qec::estimateLerDirect(ctx, decoder, shots,
                                       17 + d, threads);
            row.push_back(qec::formatSci(result.ler));
        }
        table.addRow(row);
        std::printf("  done: p = %g\n", p);
    }
    table.print();
    std::printf("\nReading: below ~1%% the columns decrease left "
                "to right (distance helps);\nabove it they "
                "increase — the threshold sits where the ordering "
                "flips.\n");
    return 0;
}
