/**
 * @file
 * Serve demo: the minimal client of the streaming decode service.
 *
 * Samples a batch of multi-round syndrome streams from the frame
 * simulator, pushes them through a DecodeServer (worker pool +
 * lock-free ingest ring, sliding-window decoding per worker), and
 * prints the sustained QPS, tail latency, and decoding accuracy
 * against the simulator's true observable flips.
 *
 * Run:  ./example_serve_demo [distance] [workers] [streams] [spec]
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "qec/qec.hpp"

int
main(int argc, char **argv)
{
    const int distance = argc > 1 ? std::atoi(argv[1]) : 7;
    const int workers = argc > 2 ? std::atoi(argv[2]) : 2;
    const int count = argc > 3 ? std::atoi(argv[3]) : 2000;
    const char *spec = argc > 4 ? argv[4] : "pinball+astrea";

    const auto &ctx = qec::ExperimentContext::get(distance, 1e-3);
    const int detPerRound = static_cast<int>(
        ctx.experiment().circuit.numDetectors() /
        static_cast<size_t>(ctx.rounds() + 1));

    std::printf("sampling %d streams (d = %d, %d rounds)...\n",
                count, distance, ctx.rounds());
    const auto streams = qec::sampleStreams(ctx, 1234, count);

    auto decoder = qec::build(qec::DecoderSpec::parse(spec),
                              ctx.graph(), ctx.paths());

    // Responses arrive on worker threads; tag-indexed cells keep
    // the writes disjoint without a lock.
    std::vector<uint64_t> predicted(streams.size(), 0);
    std::atomic<uint64_t> aborted{0};

    qec::ServeConfig config;
    config.workers = workers;
    config.queueCapacity = 256;
    qec::DecodeServer server(
        *decoder, detPerRound, config,
        [&](const qec::DecodeResponse &r) {
            predicted[r.tag] = r.correctedObs;
            if (r.aborted) {
                aborted.fetch_add(1, std::memory_order_relaxed);
            }
        });

    std::printf("serving through %s on %d workers...\n", spec,
                workers);
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < streams.size(); ++i) {
        while (!server.submit(streams[i], i)) {
            std::this_thread::yield(); // Backpressure: retry.
        }
    }
    server.drain();
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    const qec::ServeStats stats = server.stats();
    server.stop();

    uint64_t wrong = 0;
    for (size_t i = 0; i < streams.size(); ++i) {
        wrong += predicted[i] != streams[i].observedObs ? 1 : 0;
    }

    std::printf(
        "\ncompleted %llu streams in %.3f s  (%.0f streams/s)\n",
        static_cast<unsigned long long>(stats.completed), elapsed,
        static_cast<double>(stats.completed) / elapsed);
    std::printf("latency   p50 %.1f us   p99 %.1f us   p999 %.1f "
                "us\n",
                stats.latency.quantile(0.50) / 1e3,
                stats.latency.quantile(0.99) / 1e3,
                stats.latency.quantile(0.999) / 1e3);
    std::printf("service   p50 %.1f us   p99 %.1f us\n",
                stats.service.quantile(0.50) / 1e3,
                stats.service.quantile(0.99) / 1e3);
    std::printf("logical errors: %llu / %llu  (aborts: %llu)\n",
                static_cast<unsigned long long>(wrong),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(aborted.load()));
    return 0;
}
