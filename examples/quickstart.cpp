/**
 * @file
 * Quickstart: build a distance-5 surface code memory experiment,
 * decode sampled syndromes with Promatch + Astrea (constructed from
 * a decoder spec string; see docs/api.md), and estimate the logical
 * error rate two ways.
 *
 * Run:  ./example_quickstart [distance] [p] [spec]
 */

#include <cstdio>
#include <cstdlib>

#include "qec/qec.hpp"

int
main(int argc, char **argv)
{
    const int distance = argc > 1 ? std::atoi(argv[1]) : 5;
    const double p = argc > 2 ? std::atof(argv[2]) : 1e-3;
    const char *spec_text =
        argc > 3 ? argv[3] : "promatch+astrea";

    std::printf("Building distance-%d memory-Z experiment at "
                "p = %g ...\n",
                distance, p);
    const auto &ctx = qec::ExperimentContext::get(distance, p);
    std::printf("  %u data qubits, %u stabilizers, %u detectors, "
                "%zu decoding-graph edges\n",
                ctx.layout().numDataQubits(),
                ctx.layout().numStabilizers(),
                ctx.graph().numDetectors(),
                ctx.graph().edges().size());

    // Decode a handful of Monte-Carlo shots by hand.
    qec::FrameSimulator simulator(ctx.experiment().circuit);
    qec::Rng rng(2024);
    qec::BatchResult batch;
    simulator.sampleBatch(rng, batch);

    qec::DecoderSpec spec;
    std::unique_ptr<qec::Decoder> decoder;
    try {
        spec = qec::DecoderSpec::parse(spec_text);
        decoder = qec::build(spec, ctx.graph(), ctx.paths());
    } catch (const qec::SpecError &error) {
        std::fprintf(stderr, "bad decoder spec \"%s\": %s\n",
                     spec_text, error.what());
        return 1;
    }
    std::printf("\nFirst 8 sampled shots through %s (spec \"%s\"):\n",
                decoder->name().c_str(), spec.toString().c_str());
    std::vector<uint32_t> defects; // Reused across lanes.
    for (int lane = 0; lane < 8; ++lane) {
        // Popcount-proportional extraction (see bitvec.hpp) — the
        // same idiom the direct-MC harness uses on its hot path.
        defects.clear();
        batch.detectorBits(lane).forEachSetBit(
            [&](uint32_t det) { defects.push_back(det); });
        const qec::DecodeResult result =
            decoder->decode(defects);
        const bool ok = !result.aborted &&
                        result.predictedObs ==
                            batch.observableMask(lane);
        std::printf("  shot %d: HW=%2zu  latency=%6.1f ns  %s\n",
                    lane, defects.size(), result.latencyNs,
                    ok ? "corrected" : "LOGICAL ERROR");
    }

    // Estimate the LER with direct Monte Carlo (threads = 0 uses
    // every hardware thread; results are bit-identical for any
    // thread count) ...
    const qec::DirectMcResult direct =
        qec::estimateLerDirect(ctx, *decoder, 20000, 7,
                               /*threads=*/0);
    std::printf("\nDirect Monte Carlo:    LER = %.3e  "
                "(%llu failures / %llu shots)\n",
                direct.ler,
                static_cast<unsigned long long>(direct.failures),
                static_cast<unsigned long long>(direct.shots));

    // ... and with the paper's Eq. 1 importance sampler, sharded
    // across all hardware threads.
    qec::LerOptions options;
    options.kMax = 16;
    options.samplesPerK = 1000;
    options.threads = 0;
    const qec::LerEstimate est =
        qec::estimateLer(ctx, *decoder, options);
    std::printf("Importance sampling:   LER = %.3e  "
                "(expected faults/shot = %.2f)\n",
                est.ler, est.expectedFaults);
    return 0;
}
