/**
 * @file
 * Decoder showdown: every decoder configuration in the library runs
 * on the same stream of stressed syndromes (the workloads the
 * paper's introduction motivates — high-HW syndromes beyond the
 * reach of brute-force RT-MWPM), and reports accuracy, abort rate,
 * and modeled latency side by side.
 *
 * Run:  ./example_decoder_showdown [distance] [k] [samples]
 */

#include <cstdio>
#include <cstdlib>

#include "qec/qec.hpp"

int
main(int argc, char **argv)
{
    const int distance = argc > 1 ? std::atoi(argv[1]) : 11;
    const int k = argc > 2 ? std::atoi(argv[2]) : 10;
    const int samples = argc > 3 ? std::atoi(argv[3]) : 400;

    std::printf("Distance %d, p = 1e-4, %d samples with %d "
                "injected faults each\n",
                distance, samples, k);
    const auto &ctx = qec::ExperimentContext::get(distance, 1e-4);
    qec::ImportanceSampler sampler(ctx.dem(), 24);

    // Pre-sample the stream so every decoder sees the same inputs.
    qec::Rng rng(99);
    std::vector<qec::ImportanceSampler::Sample> stream;
    for (int s = 0; s < samples; ++s) {
        stream.push_back(sampler.sample(k, rng));
    }

    qec::ReportTable table(
        "Decoder showdown (identical syndrome stream)",
        {"decoder", "errors", "aborts", "avg latency", "max "
         "latency", "avg weight"});
    for (const std::string &name : qec::decoderNames()) {
        auto decoder =
            qec::makeDecoder(name, ctx.graph(), ctx.paths());
        int errors = 0, aborts = 0;
        qec::WeightedStats latency, weight;
        for (const auto &sample : stream) {
            const qec::DecodeResult result =
                decoder->decode(sample.defects);
            if (result.aborted) {
                ++aborts;
                ++errors;
            } else if (result.predictedObs != sample.obsMask) {
                ++errors;
            } else {
                weight.add(result.weight);
            }
            latency.add(result.latencyNs);
        }
        table.addRow(
            {decoder->name(), std::to_string(errors),
             std::to_string(aborts),
             qec::formatFixed(latency.mean(), 1) + " ns",
             qec::formatFixed(latency.max(), 0) + " ns",
             qec::formatFixed(weight.mean(), 1)});
    }
    table.print();
    std::printf("\n(MWPM reports zero latency: it is the non-real-"
                "time software baseline.)\n");
    return 0;
}
