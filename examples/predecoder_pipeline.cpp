/**
 * @file
 * Anatomy of one high-HW decode at d = 13: shows the syndrome, the
 * Promatch predecode trace (steps used, HW reduction, cycle cost),
 * the Astrea handoff, and the parallel Astrea-G arbitration —
 * Fig. 8 of the paper as a runnable walkthrough.
 *
 * Run:  ./example_predecoder_pipeline [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "qec/qec.hpp"

int
main(int argc, char **argv)
{
    const uint64_t seed = argc > 1 ? std::atoll(argv[1]) : 11;

    std::printf("Building d = 13 context at p = 1e-4 ...\n");
    const auto &ctx = qec::ExperimentContext::get(13, 1e-4);

    // Hunt for a high-HW syndrome via k-fault injection.
    qec::ImportanceSampler sampler(ctx.dem(), 24);
    qec::Rng rng(seed);
    qec::ImportanceSampler::Sample sample;
    do {
        sample = sampler.sample(9, rng);
    } while (sample.defects.size() <= 12);

    std::printf("\nSyndrome: HW = %zu, flipped detectors:\n  ",
                sample.defects.size());
    for (uint32_t det : sample.defects) {
        const auto &coord = ctx.graph().coords()[det];
        std::printf("(r%d,c%d,t%d) ", coord.row, coord.col,
                    coord.layer);
    }
    std::printf("\n");

    // --- Promatch predecode, step by step.
    qec::LatencyConfig latency;
    qec::PromatchPredecoder promatch(ctx.graph(), ctx.paths(),
                                     latency);
    const long long budget = static_cast<long long>(
        latency.effectiveBudgetNs() / latency.nsPerCycle);
    const qec::PredecodeResult pre =
        promatch.predecode(sample.defects, budget);
    std::printf("\nPromatch predecode:\n"
                "  rounds           : %d\n"
                "  cycles           : %lld (%.0f ns)\n"
                "  steps used       : %s%s%s%s\n"
                "  HW %zu -> %zu (prematch weight %.2f)\n",
                pre.rounds, pre.cycles,
                pre.cycles * latency.nsPerCycle,
                pre.steps.step1 ? "1 " : "",
                pre.steps.step2 ? "2 " : "",
                pre.steps.step3 ? "3 " : "",
                pre.steps.step4 ? "4 " : "",
                sample.defects.size(), pre.residual.size(),
                pre.weight);

    // --- Astrea on the residual.
    qec::AstreaDecoder astrea(ctx.graph(), ctx.paths(), latency);
    const qec::DecodeResult main_result =
        astrea.decode(pre.residual);
    std::printf("\nAstrea on residual (HW %zu): latency %.0f ns, "
                "weight %.2f\n",
                pre.residual.size(), main_result.latencyNs,
                main_result.weight);

    // --- The assembled pipeline and the parallel combination.
    auto pipeline = qec::makeDecoder("promatch_astrea",
                                     ctx.graph(), ctx.paths());
    auto parallel = qec::makeDecoder("promatch_par_ag",
                                     ctx.graph(), ctx.paths());
    auto mwpm =
        qec::makeDecoder("mwpm", ctx.graph(), ctx.paths());

    for (auto *decoder :
         {pipeline.get(), parallel.get(), mwpm.get()}) {
        const qec::DecodeResult result =
            decoder->decode(sample.defects);
        const bool ok = !result.aborted &&
                        result.predictedObs == sample.obsMask;
        std::printf("%-26s weight %7.2f  latency %6.1f ns  %s\n",
                    decoder->name().c_str(), result.weight,
                    result.latencyNs,
                    ok ? "corrected" : "LOGICAL ERROR");
    }
    std::printf("\n(1 us budget; 960 ns effective after the "
                "10-cycle ||AG comparison reserve)\n");
    return 0;
}
